//! Pluggable simulated deep-Web backends.
//!
//! [`Source`] abstracts the engine-facing contract of a deep-Web source —
//! "answer this access with a sound response" — behind thread-safe
//! implementations that the batch scheduler may call concurrently.
//!
//! [`SimulatedSource`] composes three backend models over a hidden
//! [`Instance`]:
//!
//! * [`LatencyModel`] — a per-source latency distribution (base + seeded
//!   deterministic jitter per round trip), optionally realised with real
//!   `thread::sleep`s so the parallel sweep harness measures genuine
//!   overlap;
//! * [`FlakyModel`] — deterministic transient failures with an internal
//!   retry loop, the retried/failed attempts counted separately from
//!   successful calls in [`SourceStats`];
//! * paging — responses delivered in pages of a fixed size, each page a
//!   simulated round trip.
//!
//! All three models affect *cost* (latency, retries, pages), never response
//! *content*: a `SimulatedSource` always returns the exact matching tuples
//! in sorted order, which is what lets the batch scheduler promise
//! sequential-equivalent semantics under concurrency (see
//! `crate::scheduler`). [`PolicySource`] adapts the single-threaded
//! [`DeepWebSource`] behind a mutex for federations that want the engine
//! crate's policies — all of which, since sound-sampling became hash-seeded
//! per access (the same [`Access::stable_hash`] the backend models draw
//! their jitter and flakiness from), answer a given access deterministically
//! regardless of call order.

use std::sync::Mutex;
use std::time::Duration;

use accrel_access::{Access, AccessMethods, Response};
use accrel_engine::{DeepWebSource, SourceStats};
use accrel_schema::{Instance, Tuple};

use crate::error::SourceError;

/// A thread-safe deep-Web source: the engine learns about the hidden data
/// only by calling [`Source::call`].
pub trait Source: Send + Sync {
    /// A human-readable source name (used in stats and error messages).
    fn name(&self) -> &str;
    /// The access methods this source understands. Sources of one
    /// federation share a single registry.
    fn methods(&self) -> &AccessMethods;
    /// Executes an access and returns its (sound) response, or an error for
    /// calls the source could not serve.
    fn call(&self, access: &Access) -> Result<Response, SourceError>;
    /// Cumulative backend statistics.
    fn stats(&self) -> BackendStats;
    /// Resets the statistics (and any per-run simulation counters).
    fn reset_stats(&self);
    /// Swaps the source's latency model mid-run (`None` removes it). The
    /// default is a no-op: only simulated backends have a model to swap;
    /// churn scripts degrade real sources by other means. Cost-only — a
    /// swap never changes response content.
    fn set_latency(&self, latency: Option<LatencyModel>) {
        let _ = latency;
    }
    /// Swaps the source's transient-failure model mid-run (`None` removes
    /// it). Default no-op, like [`Source::set_latency`].
    fn set_flaky(&self, flaky: Option<FlakyModel>) {
        let _ = flaky;
    }
}

/// Backend statistics: the engine-level [`SourceStats`] plus simulation
/// extras.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Successful / retried / failed call accounting.
    pub source: SourceStats,
    /// Pages fetched by paged backends (0 for unpaged ones).
    pub pages_fetched: usize,
    /// Total simulated latency attributed to this source, in microseconds.
    pub simulated_latency_micros: u64,
    /// Circuit-breaker trips charged to this source (zero without a chaos
    /// controller — see `crate::chaos`; filled in by the federation's
    /// `per_source_stats`, not by the source itself).
    pub breaker_trips: usize,
    /// Calls this source never saw because its breaker was open at the time
    /// (zero without a chaos controller).
    pub short_circuited: usize,
}

impl BackendStats {
    /// Field-wise sum (for aggregating across a federation's sources).
    pub fn merged(&self, other: &BackendStats) -> BackendStats {
        BackendStats {
            source: self.source.merged(&other.source),
            pages_fetched: self.pages_fetched + other.pages_fetched,
            simulated_latency_micros: self.simulated_latency_micros
                + other.simulated_latency_micros,
            breaker_trips: self.breaker_trips + other.breaker_trips,
            short_circuited: self.short_circuited + other.short_circuited,
        }
    }

    /// The stats accumulated since `earlier`.
    pub fn since(&self, earlier: &BackendStats) -> BackendStats {
        BackendStats {
            source: self.source.since(&earlier.source),
            pages_fetched: self.pages_fetched.saturating_sub(earlier.pages_fetched),
            simulated_latency_micros: self
                .simulated_latency_micros
                .saturating_sub(earlier.simulated_latency_micros),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            short_circuited: self.short_circuited.saturating_sub(earlier.short_circuited),
        }
    }
}

/// A per-source latency distribution: `base + jitter` microseconds per
/// simulated round trip, with the jitter drawn deterministically from the
/// access and the trip index (no shared RNG state, so concurrent calls see
/// the same latencies regardless of scheduling order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed cost per round trip, in microseconds.
    pub base_micros: u64,
    /// Upper bound (exclusive) of the deterministic per-trip jitter.
    pub jitter_micros: u64,
    /// Seed mixed into the jitter hash.
    pub seed: u64,
    /// Realise the latency with `thread::sleep` (for throughput harnesses);
    /// when `false` the latency is only recorded in the stats.
    pub sleep: bool,
}

impl LatencyModel {
    /// A fixed latency of `base_micros` per round trip, recorded but not
    /// slept.
    pub fn recorded(base_micros: u64) -> Self {
        Self {
            base_micros,
            jitter_micros: 0,
            seed: 0,
            sleep: false,
        }
    }

    /// Like [`LatencyModel::recorded`] but realised with real sleeps.
    pub fn slept(base_micros: u64, jitter_micros: u64) -> Self {
        Self {
            base_micros,
            jitter_micros,
            seed: 0,
            sleep: true,
        }
    }

    pub(crate) fn trip_micros(&self, access: &Access, trip: u64) -> u64 {
        if self.jitter_micros == 0 {
            return self.base_micros;
        }
        let h = access.stable_hash_seeded(self.seed ^ trip.wrapping_mul(0x9e37));
        self.base_micros + h % self.jitter_micros
    }
}

/// Deterministic transient failures. An access is *flaky* when its hash
/// lands in the model's window; a flaky access fails its first
/// `fail_attempts` attempts of every call, and the source retries up to
/// `retries` times before giving up. Failures depend only on the access, so
/// concurrent and sequential executions see the same outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlakyModel {
    /// One in `period` accesses is flaky (`period = 1` makes every access
    /// flaky; `0` disables the model).
    pub period: u64,
    /// How many attempts of a flaky access fail before one succeeds.
    pub fail_attempts: usize,
    /// Transparent retries the source performs per call.
    pub retries: usize,
}

impl FlakyModel {
    fn planned_failures(&self, access: &Access) -> usize {
        if self.period == 0 {
            return 0;
        }
        if access.stable_hash_seeded(0) % self.period == 0 {
            self.fail_attempts
        } else {
            0
        }
    }
}

#[derive(Debug, Default)]
struct BackendState {
    stats: BackendStats,
    // Cost models live behind the state lock so churn scripts can swap them
    // mid-run (`Source::set_latency` / `Source::set_flaky`) while calls are
    // in flight on other threads.
    latency: Option<LatencyModel>,
    flaky: Option<FlakyModel>,
}

/// A thread-safe simulated source over a hidden instance, composing the
/// latency / flaky / paged backend models. Responses are the exact matching
/// tuples in sorted order — optionally narrowed by a
/// [`ResponsePolicy`](accrel_engine::ResponsePolicy)
/// ([`SimulatedSource::with_policy`]), whose selection is a pure function of
/// the access — so the models shape cost, never nondeterminism.
#[derive(Debug)]
pub struct SimulatedSource {
    name: String,
    instance: Instance,
    methods: AccessMethods,
    policy: Option<accrel_engine::ResponsePolicy>,
    page_size: Option<usize>,
    state: Mutex<BackendState>,
}

impl SimulatedSource {
    /// An exact, instant, reliable source (no backend model attached).
    pub fn exact(name: impl Into<String>, instance: Instance, methods: AccessMethods) -> Self {
        Self {
            name: name.into(),
            instance,
            methods,
            policy: None,
            page_size: None,
            state: Mutex::new(BackendState::default()),
        }
    }

    /// Attaches a latency model.
    pub fn with_latency(self, latency: LatencyModel) -> Self {
        self.state.lock().expect("source state poisoned").latency = Some(latency);
        self
    }

    /// Attaches a transient-failure model.
    pub fn with_flaky(self, flaky: FlakyModel) -> Self {
        self.state.lock().expect("source state poisoned").flaky = Some(flaky);
        self
    }

    /// Answers accesses through `policy` instead of exactly. The selection
    /// is [`ResponsePolicy::apply`](accrel_engine::ResponsePolicy::apply) —
    /// the same routine [`DeepWebSource`]
    /// runs — so a `SimulatedSource` and a `DeepWebSource` over the same
    /// hidden instance with the same policy (same `SoundSample` seed) answer
    /// every access byte-for-byte identically. That makes policy-equipped
    /// simulated sources interchangeable *replicas* of each other and of the
    /// sequential oracle, which is what replica failover (`crate::chaos`)
    /// needs to keep the sequential-equivalence guarantee intact.
    pub fn with_policy(mut self, policy: accrel_engine::ResponsePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Delivers responses in pages of `page_size` tuples (each page one
    /// simulated round trip).
    pub fn with_paging(mut self, page_size: usize) -> Self {
        self.page_size = Some(page_size.max(1));
        self
    }

    /// The hidden instance (tests and ground-truth checks only).
    pub fn hidden_instance(&self) -> &Instance {
        &self.instance
    }

    /// Resolves everything about one call — response content, planned
    /// failures, page count and the per-trip latencies — *without* touching
    /// the statistics or sleeping. The sync [`Source::call`] and the async
    /// adapter (`crate::AsyncSimulatedSource`) both execute the same plan;
    /// they differ only in how the round trips are realised (one
    /// `thread::sleep` versus awaited virtual-clock sleeps per trip).
    pub(crate) fn plan_call(&self, access: &Access) -> Result<CallPlan, SourceError> {
        let exact =
            Response::exact(access, &self.methods, &self.instance).map_err(SourceError::Access)?;
        let mut tuples: Vec<_> = exact.tuples().to_vec();
        tuples.sort();
        if let Some(policy) = &self.policy {
            tuples = policy.apply(access, tuples);
        }

        // Snapshot the (swappable) cost models once, so one plan is computed
        // against one consistent model pair even if a churn event lands
        // mid-call.
        let (latency, flaky) = {
            let state = self.state.lock().expect("source state poisoned");
            (state.latency.clone(), state.flaky.clone())
        };
        let planned_failures = flaky
            .as_ref()
            .map(|f| f.planned_failures(access))
            .unwrap_or(0);
        let allowed_retries = flaky.as_ref().map(|f| f.retries).unwrap_or(0);
        let succeeds = planned_failures <= allowed_retries;
        let failed_attempts = planned_failures.min(allowed_retries + 1);
        // Round trips: every failed attempt is one; the successful attempt
        // costs one per page.
        let pages = match self.page_size {
            Some(page_size) => tuples.len().div_ceil(page_size).max(1),
            None => 1,
        };
        let trips = failed_attempts as u64 + if succeeds { pages as u64 } else { 0 };
        let mut trip_micros = Vec::new();
        if let Some(latency) = &latency {
            trip_micros.extend((0..trips).map(|trip| latency.trip_micros(access, trip)));
        }
        Ok(CallPlan {
            tuples,
            succeeds,
            failed_attempts,
            allowed_retries,
            pages,
            paged: self.page_size.is_some(),
            trip_micros,
            sleep: latency.map(|l| l.sleep).unwrap_or(false),
        })
    }

    /// Records a planned call's statistics (exactly once per call, whether
    /// the round trips were slept or awaited).
    pub(crate) fn commit_plan(&self, plan: &CallPlan) {
        let mut state = self.state.lock().expect("source state poisoned");
        state.stats.simulated_latency_micros += plan.total_latency_micros();
        if plan.succeeds {
            state.stats.source.calls += 1;
            state.stats.source.retries += plan.failed_attempts;
            state.stats.source.tuples_returned += plan.tuples.len();
            if plan.paged {
                state.stats.pages_fetched += plan.pages;
            }
        } else {
            state.stats.source.retries += plan.allowed_retries;
            state.stats.source.failures += 1;
        }
    }

    /// The [`SourceError::Unavailable`] a failed plan surfaces as.
    pub(crate) fn unavailable(&self, plan: &CallPlan) -> SourceError {
        SourceError::Unavailable {
            source: self.name.clone(),
            reason: format!(
                "transient failure persisted through {} retries",
                plan.allowed_retries
            ),
        }
    }
}

/// The fully-resolved outcome of one simulated call: what will be returned,
/// whether the flaky model lets it succeed, and the latency of every
/// simulated round trip (failed attempts first, then one per page). The
/// models shape cost, never content, so the plan is a pure function of the
/// access.
#[derive(Debug, Clone)]
pub(crate) struct CallPlan {
    /// The exact matching tuples, sorted.
    pub(crate) tuples: Vec<Tuple>,
    /// Whether the call ultimately succeeds (retries absorb the failures).
    pub(crate) succeeds: bool,
    /// Failed attempts actually performed (≤ `allowed_retries + 1`).
    pub(crate) failed_attempts: usize,
    /// Retries the source was willing to perform.
    pub(crate) allowed_retries: usize,
    /// Pages of the successful response.
    pub(crate) pages: usize,
    /// Whether the source pages at all (for the pages-fetched counter).
    pub(crate) paged: bool,
    /// Per-round-trip latency, in microseconds (empty without a latency
    /// model).
    pub(crate) trip_micros: Vec<u64>,
    /// Whether the latency model in force asked for real sleeps (snapshotted
    /// with the model, so a mid-call swap cannot split the decision).
    pub(crate) sleep: bool,
}

impl CallPlan {
    /// Total simulated latency across every round trip.
    pub(crate) fn total_latency_micros(&self) -> u64 {
        self.trip_micros.iter().sum()
    }
}

impl Source for SimulatedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn methods(&self) -> &AccessMethods {
        &self.methods
    }

    fn call(&self, access: &Access) -> Result<Response, SourceError> {
        let plan = self.plan_call(access)?;
        self.commit_plan(&plan);
        // Sleep outside the state lock so concurrent calls overlap. The
        // threaded path realises the whole plan as one sleep; the async
        // adapter awaits the same trips one by one on the virtual clock.
        let latency_micros = plan.total_latency_micros();
        if latency_micros > 0 && plan.sleep {
            std::thread::sleep(Duration::from_micros(latency_micros));
        }
        if !plan.succeeds {
            return Err(self.unavailable(&plan));
        }
        Ok(Response::new(plan.tuples))
    }

    fn stats(&self) -> BackendStats {
        self.state
            .lock()
            .expect("source state poisoned")
            .stats
            .clone()
    }

    fn reset_stats(&self) {
        let mut state = self.state.lock().expect("source state poisoned");
        state.stats = BackendStats::default();
    }

    fn set_latency(&self, latency: Option<LatencyModel>) {
        self.state.lock().expect("source state poisoned").latency = latency;
    }

    fn set_flaky(&self, flaky: Option<FlakyModel>) {
        self.state.lock().expect("source state poisoned").flaky = flaky;
    }
}

/// Adapts the engine crate's single-threaded [`DeepWebSource`] — and with it
/// every [`accrel_engine::ResponsePolicy`], sound-sampling included (now
/// hash-seeded per access, hence order-insensitive) — behind a mutex. Calls
/// serialise on the lock, so this adapter gains no concurrency; it exists so
/// federations can mix policy sources with the simulated backends.
#[derive(Debug)]
pub struct PolicySource {
    name: String,
    methods: AccessMethods,
    inner: Mutex<DeepWebSource>,
}

impl PolicySource {
    /// Wraps `source` under `name`.
    pub fn new(name: impl Into<String>, source: DeepWebSource) -> Self {
        Self {
            name: name.into(),
            methods: source.methods().clone(),
            inner: Mutex::new(source),
        }
    }
}

impl Source for PolicySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn methods(&self) -> &AccessMethods {
        &self.methods
    }

    fn call(&self, access: &Access) -> Result<Response, SourceError> {
        self.inner
            .lock()
            .expect("source poisoned")
            .call(access)
            .map_err(SourceError::Access)
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            source: self.inner.lock().expect("source poisoned").stats(),
            ..BackendStats::default()
        }
    }

    fn reset_stats(&self) {
        self.inner.lock().expect("source poisoned").reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accrel_access::{binding, AccessMode};
    use accrel_engine::ResponsePolicy;
    use accrel_schema::Schema;

    fn setup() -> (Instance, AccessMethods, Access) {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d), ("b", d)]).unwrap();
        let schema = b.build();
        let mut mb = AccessMethods::builder(schema.clone());
        let acc = mb.add("RAcc", "R", &["a"], AccessMode::Dependent).unwrap();
        let methods = mb.build();
        let mut inst = Instance::new(schema);
        for i in 0..10 {
            inst.insert_named("R", ["k".to_string(), format!("v{i}")])
                .unwrap();
        }
        (inst, methods, Access::new(acc, binding(["k"])))
    }

    #[test]
    fn exact_source_returns_sorted_matching_tuples() {
        let (inst, methods, access) = setup();
        let source = SimulatedSource::exact("s", inst, methods);
        let resp = source.call(&access).unwrap();
        assert_eq!(resp.len(), 10);
        let mut sorted = resp.tuples().to_vec();
        sorted.sort();
        assert_eq!(resp.tuples(), sorted.as_slice());
        let stats = source.stats();
        assert_eq!(stats.source.calls, 1);
        assert_eq!(stats.source.tuples_returned, 10);
        assert_eq!(stats.source.retries, 0);
        assert_eq!(stats.source.failures, 0);
        source.reset_stats();
        assert_eq!(source.stats(), BackendStats::default());
    }

    #[test]
    fn latency_model_is_deterministic_and_recorded() {
        let (inst, methods, access) = setup();
        let source = SimulatedSource::exact("s", inst, methods).with_latency(LatencyModel {
            base_micros: 100,
            jitter_micros: 50,
            seed: 7,
            sleep: false,
        });
        source.call(&access).unwrap();
        let first = source.stats().simulated_latency_micros;
        assert!((100..150).contains(&first));
        source.reset_stats();
        source.call(&access).unwrap();
        // Same access, same deterministic latency.
        assert_eq!(source.stats().simulated_latency_micros, first);
    }

    #[test]
    fn flaky_model_counts_retries_separately_from_calls() {
        let (inst, methods, access) = setup();
        // Every access is flaky, fails twice, and three retries are allowed:
        // each call succeeds after two absorbed failures.
        let source = SimulatedSource::exact("s", inst, methods).with_flaky(FlakyModel {
            period: 1,
            fail_attempts: 2,
            retries: 3,
        });
        let resp = source.call(&access).unwrap();
        assert_eq!(resp.len(), 10);
        let stats = source.stats().source;
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn flaky_model_exhausting_retries_fails_the_call() {
        let (inst, methods, access) = setup();
        let source = SimulatedSource::exact("s", inst, methods).with_flaky(FlakyModel {
            period: 1,
            fail_attempts: 5,
            retries: 1,
        });
        let err = source.call(&access).unwrap_err();
        assert!(matches!(err, SourceError::Unavailable { .. }));
        let stats = source.stats().source;
        assert_eq!(stats.calls, 0);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.retries, 1);
        // The outcome is deterministic: calling again fails identically.
        assert!(source.call(&access).is_err());
    }

    #[test]
    fn paged_source_counts_pages_and_returns_everything() {
        let (inst, methods, access) = setup();
        let source = SimulatedSource::exact("s", inst, methods)
            .with_paging(3)
            .with_latency(LatencyModel::recorded(10));
        let resp = source.call(&access).unwrap();
        assert_eq!(resp.len(), 10);
        let stats = source.stats();
        // 10 tuples in pages of 3 → 4 pages, each a 10µs round trip.
        assert_eq!(stats.pages_fetched, 4);
        assert_eq!(stats.simulated_latency_micros, 40);
    }

    #[test]
    fn policy_source_adapts_deep_web_source() {
        let (inst, methods, access) = setup();
        let inner = DeepWebSource::new(inst, methods, ResponsePolicy::FirstK(4));
        let source = PolicySource::new("policy", inner);
        let resp = source.call(&access).unwrap();
        assert_eq!(resp.len(), 4);
        assert_eq!(source.name(), "policy");
        assert_eq!(source.stats().source.calls, 1);
        source.reset_stats();
        assert_eq!(source.stats().source.calls, 0);
    }

    #[test]
    fn backend_stats_merge_and_diff() {
        let a = BackendStats {
            source: SourceStats {
                calls: 3,
                retries: 1,
                failures: 0,
                tuples_returned: 12,
            },
            pages_fetched: 2,
            simulated_latency_micros: 100,
            breaker_trips: 0,
            short_circuited: 0,
        };
        let b = a.merged(&a);
        assert_eq!(b.source.calls, 6);
        assert_eq!(b.pages_fetched, 4);
        assert_eq!(b.since(&a), a);
    }
}
