//! Parallel relevance sweeps.
//!
//! The relevance decision procedures are pure functions of
//! `(query, configuration, access, methods)`, so verdicts for a candidate
//! set can be computed on any number of threads with results identical to
//! the sequential order. [`parallel_relevance_sweep`] partitions the
//! candidates into contiguous chunks across `std::thread::scope` workers
//! and returns the verdict vector aligned with the input — the harness uses
//! it to measure relevance-check throughput across worker counts on the
//! 10⁴-fact E5 configurations.

use accrel_access::{Access, AccessMethods};
use accrel_core::{is_immediately_relevant, is_long_term_relevant, SearchBudget};
use accrel_engine::RelevanceKind;
use accrel_query::Query;
use accrel_schema::Configuration;

/// Applies `f` to every item, partitioned into contiguous chunks across at
/// most `workers` scoped threads. The result vector is aligned with `items`
/// — worker completion order never shows. Shared by the relevance sweep and
/// the batch scheduler's fetch loop.
pub(crate) fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (chunk_items, out) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in chunk_items.iter().zip(out) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot written by its worker"))
        .collect()
}

/// Computes the `kind` relevance verdict of every access in `candidates`
/// at `conf`, fanning the checks out over at most `workers` scoped threads.
/// The result is aligned with `candidates` and independent of `workers`.
pub fn parallel_relevance_sweep(
    query: &Query,
    conf: &Configuration,
    candidates: &[Access],
    methods: &AccessMethods,
    kind: RelevanceKind,
    budget: &SearchBudget,
    workers: usize,
) -> Vec<bool> {
    // Force the query's cached UCQ expansion before fanning out, so worker
    // threads share it instead of racing to build it.
    let _ = query.ucq();
    parallel_map(candidates, workers, |access| match kind {
        RelevanceKind::Immediate => is_immediately_relevant(query, conf, access, methods),
        RelevanceKind::LongTerm => is_long_term_relevant(query, conf, access, methods, budget),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accrel_access::enumerate::{well_formed_accesses, EnumerationOptions};
    use accrel_engine::scenarios::bank_scenario;

    #[test]
    fn sweep_results_are_worker_count_independent() {
        let scenario = bank_scenario();
        // Grow the configuration a little so several accesses exist.
        let mut conf = scenario.initial_configuration.clone();
        conf.insert_named("Employee", ["e-x", "teller", "L", "F", "off-9"])
            .unwrap();
        let candidates =
            well_formed_accesses(&conf, &scenario.methods, &EnumerationOptions::default());
        assert!(candidates.len() > 1);
        let budget = accrel_core::SearchBudget::default();
        let baseline = parallel_relevance_sweep(
            &scenario.query,
            &conf,
            &candidates,
            &scenario.methods,
            RelevanceKind::Immediate,
            &budget,
            1,
        );
        for workers in [2, 4, 7] {
            let parallel = parallel_relevance_sweep(
                &scenario.query,
                &conf,
                &candidates,
                &scenario.methods,
                RelevanceKind::Immediate,
                &budget,
                workers,
            );
            assert_eq!(parallel, baseline, "workers={workers}");
        }
        // The sequential procedures agree entry by entry.
        for (access, verdict) in candidates.iter().zip(&baseline) {
            assert_eq!(
                *verdict,
                accrel_core::is_immediately_relevant(
                    &scenario.query,
                    &conf,
                    access,
                    &scenario.methods
                )
            );
        }
    }

    #[test]
    fn long_term_sweep_runs() {
        let scenario = bank_scenario();
        let conf = scenario.initial_configuration.clone();
        let candidates =
            well_formed_accesses(&conf, &scenario.methods, &EnumerationOptions::default());
        let budget = accrel_core::SearchBudget::shallow();
        let verdicts = parallel_relevance_sweep(
            &scenario.query,
            &conf,
            &candidates,
            &scenario.methods,
            RelevanceKind::LongTerm,
            &budget,
            4,
        );
        assert_eq!(verdicts.len(), candidates.len());
        // The bank scenario always has at least one long-term relevant
        // access at the start (the chase can begin).
        assert!(verdicts.iter().any(|&v| v));
    }
}
