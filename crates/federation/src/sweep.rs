//! Parallel relevance sweeps.
//!
//! The relevance decision procedures are pure functions of
//! `(query, configuration, access, methods)`, so verdicts for a candidate
//! set can be computed on any number of threads with results identical to
//! the sequential order. [`parallel_relevance_sweep`] partitions the
//! candidates into contiguous chunks across `std::thread::scope` workers
//! and returns the verdict vector aligned with the input — the harness uses
//! it to measure relevance-check throughput across worker counts on the E5
//! configurations (10⁴ facts in smoke, 10⁶ in the full harness).
//!
//! Each worker operates on its **own O(relations) snapshot** of the
//! configuration ([`accrel_schema::Configuration::snapshot`]): with the
//! copy-on-write sharded store, snapshotting a million-fact configuration
//! per worker costs a handful of `Arc` bumps, and since the checks only
//! read, no worker ever triggers a shard copy —
//! [`SweepReport::worker_shard_copies`] stays zero, which the tests pin
//! down.

use accrel_access::{Access, AccessMethods};
use accrel_core::{is_immediately_relevant, is_long_term_relevant, SearchBudget};
use accrel_engine::{RelevanceKind, RunOptions};
use accrel_query::Query;
use accrel_schema::Configuration;

/// Applies `f` to every item, partitioned into contiguous chunks across at
/// most `workers` scoped threads. The result vector is aligned with `items`
/// — worker completion order never shows. Shared by the relevance sweep and
/// the batch scheduler's fetch loop.
pub(crate) fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = RunOptions::clamp_workers(workers, items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (chunk_items, out) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in chunk_items.iter().zip(out) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot written by its worker"))
        .collect()
}

/// Outcome of a [`parallel_relevance_sweep_report`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// The relevance verdicts, aligned with the candidate slice.
    pub verdicts: Vec<bool>,
    /// Number of worker snapshots taken (one per spawned worker chunk).
    pub snapshots: usize,
    /// Copy-on-write shard copies performed across all worker snapshots.
    /// The sweep only reads, so this is zero — reported rather than assumed,
    /// and surfaced as a harness metric so structural sharing stays
    /// observable.
    pub worker_shard_copies: u64,
}

/// Computes the `kind` relevance verdict of every access in `candidates`
/// at `conf`, fanning the checks out over at most `workers` scoped threads,
/// each holding its own copy-on-write snapshot of `conf`. The verdicts are
/// aligned with `candidates` and independent of `workers`.
///
/// Worker-count edge cases are explicit: `workers == 0` is promoted to 1
/// (a sweep cannot run on no workers), and both 0 and 1 take the in-thread
/// sequential path — one snapshot, no spawned threads — whose output the
/// regression tests pin byte-for-byte against the direct decision-procedure
/// loop. An empty candidate slice returns an empty report without
/// snapshotting at all.
pub fn parallel_relevance_sweep_report(
    query: &Query,
    conf: &Configuration,
    candidates: &[Access],
    methods: &AccessMethods,
    kind: RelevanceKind,
    budget: &SearchBudget,
    workers: usize,
) -> SweepReport {
    // Force the query's cached UCQ expansion before fanning out, so worker
    // threads share it instead of racing to build it.
    let _ = query.ucq();
    let check = |snap: &Configuration, access: &Access| match kind {
        RelevanceKind::Immediate => is_immediately_relevant(query, snap, access, methods),
        RelevanceKind::LongTerm => is_long_term_relevant(query, snap, access, methods, budget),
    };
    if candidates.is_empty() {
        return SweepReport {
            verdicts: Vec::new(),
            snapshots: 0,
            worker_shard_copies: 0,
        };
    }
    // 0 workers is promoted to 1; never more workers than candidates. The
    // clamp is the engine-wide one, so every layer agrees on the edge cases.
    let workers = RunOptions::clamp_workers(workers, candidates.len());
    if workers <= 1 {
        let snap = conf.snapshot();
        let before = snap.shard_copies();
        let verdicts = candidates.iter().map(|a| check(&snap, a)).collect();
        return SweepReport {
            verdicts,
            snapshots: 1,
            worker_shard_copies: snap.shard_copies() - before,
        };
    }
    let mut results: Vec<Option<bool>> = Vec::with_capacity(candidates.len());
    results.resize_with(candidates.len(), || None);
    let chunk = candidates.len().div_ceil(workers);
    let mut copies: Vec<u64> = Vec::new();
    let mut snapshots = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_items, out) in candidates.chunks(chunk).zip(results.chunks_mut(chunk)) {
            // The snapshot is O(relations); the worker owns it outright.
            let snap = conf.snapshot();
            snapshots += 1;
            let check = &check;
            handles.push(scope.spawn(move || {
                let before = snap.shard_copies();
                for (item, slot) in chunk_items.iter().zip(out) {
                    *slot = Some(check(&snap, item));
                }
                snap.shard_copies() - before
            }));
        }
        for handle in handles {
            copies.push(handle.join().expect("sweep worker panicked"));
        }
    });
    SweepReport {
        verdicts: results
            .into_iter()
            .map(|r| r.expect("every slot written by its worker"))
            .collect(),
        snapshots,
        worker_shard_copies: copies.into_iter().sum(),
    }
}

/// [`parallel_relevance_sweep_report`] returning the verdicts alone (the
/// historical signature).
pub fn parallel_relevance_sweep(
    query: &Query,
    conf: &Configuration,
    candidates: &[Access],
    methods: &AccessMethods,
    kind: RelevanceKind,
    budget: &SearchBudget,
    workers: usize,
) -> Vec<bool> {
    parallel_relevance_sweep_report(query, conf, candidates, methods, kind, budget, workers)
        .verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use accrel_access::enumerate::{well_formed_accesses, EnumerationOptions};
    use accrel_engine::scenarios::bank_scenario;

    #[test]
    fn sweep_results_are_worker_count_independent() {
        let scenario = bank_scenario();
        // Grow the configuration a little so several accesses exist.
        let mut conf = scenario.initial_configuration.clone();
        conf.insert_named("Employee", ["e-x", "teller", "L", "F", "off-9"])
            .unwrap();
        let candidates =
            well_formed_accesses(&conf, &scenario.methods, &EnumerationOptions::default());
        assert!(candidates.len() > 1);
        let budget = accrel_core::SearchBudget::default();
        let baseline = parallel_relevance_sweep(
            &scenario.query,
            &conf,
            &candidates,
            &scenario.methods,
            RelevanceKind::Immediate,
            &budget,
            1,
        );
        for workers in [2, 4, 7] {
            let parallel = parallel_relevance_sweep(
                &scenario.query,
                &conf,
                &candidates,
                &scenario.methods,
                RelevanceKind::Immediate,
                &budget,
                workers,
            );
            assert_eq!(parallel, baseline, "workers={workers}");
        }
        // The sequential procedures agree entry by entry.
        for (access, verdict) in candidates.iter().zip(&baseline) {
            assert_eq!(
                *verdict,
                accrel_core::is_immediately_relevant(
                    &scenario.query,
                    &conf,
                    access,
                    &scenario.methods
                )
            );
        }
    }

    /// Regression (worker-count edge cases): a 1-worker sweep — and a
    /// 0-worker sweep, which is promoted to 1 — must equal the plain
    /// sequential decision-procedure loop, verdict for verdict, and report
    /// exactly one snapshot with zero shard copies.
    #[test]
    fn zero_and_one_worker_sweeps_equal_the_sequential_loop() {
        let scenario = bank_scenario();
        let mut conf = scenario.initial_configuration.clone();
        conf.insert_named("Employee", ["e-x", "teller", "L", "F", "off-9"])
            .unwrap();
        let candidates =
            well_formed_accesses(&conf, &scenario.methods, &EnumerationOptions::default());
        assert!(candidates.len() > 1);
        let budget = accrel_core::SearchBudget::default();
        let sequential: Vec<bool> = candidates
            .iter()
            .map(|a| {
                accrel_core::is_immediately_relevant(&scenario.query, &conf, a, &scenario.methods)
            })
            .collect();
        for workers in [0usize, 1] {
            let report = parallel_relevance_sweep_report(
                &scenario.query,
                &conf,
                &candidates,
                &scenario.methods,
                RelevanceKind::Immediate,
                &budget,
                workers,
            );
            assert_eq!(report.verdicts, sequential, "workers={workers}");
            assert_eq!(report.snapshots, 1, "workers={workers}");
            assert_eq!(report.worker_shard_copies, 0, "workers={workers}");
        }
    }

    /// Regression: an empty candidate slice yields an empty report (no
    /// snapshot, no threads) at every worker count, including 0.
    #[test]
    fn empty_candidate_sweeps_are_empty_reports() {
        let scenario = bank_scenario();
        let budget = accrel_core::SearchBudget::shallow();
        for workers in [0usize, 1, 4] {
            let report = parallel_relevance_sweep_report(
                &scenario.query,
                &scenario.initial_configuration,
                &[],
                &scenario.methods,
                RelevanceKind::LongTerm,
                &budget,
                workers,
            );
            assert_eq!(
                report,
                SweepReport {
                    verdicts: Vec::new(),
                    snapshots: 0,
                    worker_shard_copies: 0
                },
                "workers={workers}"
            );
        }
    }

    #[test]
    fn long_term_sweep_runs() {
        let scenario = bank_scenario();
        let conf = scenario.initial_configuration.clone();
        let candidates =
            well_formed_accesses(&conf, &scenario.methods, &EnumerationOptions::default());
        let budget = accrel_core::SearchBudget::shallow();
        let verdicts = parallel_relevance_sweep(
            &scenario.query,
            &conf,
            &candidates,
            &scenario.methods,
            RelevanceKind::LongTerm,
            &budget,
            4,
        );
        assert_eq!(verdicts.len(), candidates.len());
        // The bank scenario always has at least one long-term relevant
        // access at the start (the chase can begin).
        assert!(verdicts.iter().any(|&v| v));
    }

    #[test]
    fn read_only_worker_snapshots_never_copy_shards() {
        let scenario = bank_scenario();
        let mut conf = scenario.initial_configuration.clone();
        conf.insert_named("Employee", ["e-x", "teller", "L", "F", "off-9"])
            .unwrap();
        let candidates =
            well_formed_accesses(&conf, &scenario.methods, &EnumerationOptions::default());
        let budget = accrel_core::SearchBudget::shallow();
        for workers in [1, 3, 5] {
            let report = parallel_relevance_sweep_report(
                &scenario.query,
                &conf,
                &candidates,
                &scenario.methods,
                RelevanceKind::Immediate,
                &budget,
                workers,
            );
            assert_eq!(report.verdicts.len(), candidates.len());
            assert!(report.snapshots >= 1);
            assert!(report.snapshots <= workers);
            assert_eq!(
                report.worker_shard_copies, 0,
                "read-only sweep copied a shard at workers={workers}"
            );
        }
    }
}
