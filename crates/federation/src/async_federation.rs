//! The async federation registry: [`crate::Federation`]'s twin over
//! [`AsyncSource`]s, sharing one [`VirtualClock`].
//!
//! The registry owns the virtual clock its simulated sources draw latencies
//! from; the async batch scheduler creates its executors over the same
//! clock, so `clock().now_micros()` before and after a run measures the
//! run's *simulated* makespan — the metric the F2 throughput sweep reports
//! without a single real sleep.

use std::sync::Arc;

use accrel_access::{Access, AccessMethodId, AccessMethods};
use accrel_schema::Schema;

use crate::async_source::{AsyncSimulatedSource, AsyncSource, SourceFuture};
use crate::chaos::{ChaosController, ChaosOptions, Gate, ModelSwap};
use crate::error::{FederationError, SourceError};
use crate::executor::VirtualClock;
use crate::source::{BackendStats, SimulatedSource};

/// A registry of autonomous *async* sources sharing one access-method
/// registry and one virtual clock, with a total routing from methods to
/// *ordered replica sets* of sources. Mirrors [`crate::Federation`] member
/// for member; the runtime difference is that [`AsyncFederation::call`]
/// hands back a future to be polled alongside other in-flight accesses
/// instead of blocking a worker thread. An attached [`ChaosController`]
/// fires its churn script against the federation's own virtual clock, so
/// chaotic async runs are fully deterministic (no pace heuristic needed).
pub struct AsyncFederation {
    methods: AccessMethods,
    clock: VirtualClock,
    sources: Vec<Box<dyn AsyncSource>>,
    /// Method index → ordered replica set (source indices, primary first).
    route: Vec<Vec<usize>>,
    chaos: Option<ChaosController>,
}

impl std::fmt::Debug for AsyncFederation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncFederation")
            .field("methods", &self.methods.len())
            .field(
                "sources",
                &self.sources.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("route", &self.route)
            .field("clock", &self.clock)
            .finish()
    }
}

impl AsyncFederation {
    /// Starts assembling an async federation over `methods`, with a fresh
    /// virtual clock at time zero.
    pub fn builder(methods: AccessMethods) -> AsyncFederationBuilder {
        let method_count = methods.len();
        AsyncFederationBuilder {
            methods,
            clock: VirtualClock::new(),
            sources: Vec::new(),
            route: vec![Vec::new(); method_count],
            chaos: None,
        }
    }

    /// The common case of one async source serving every method.
    pub fn single(source: impl AsyncSource + 'static) -> Self {
        let methods = source.methods().clone();
        let method_count = methods.len();
        AsyncFederation {
            methods,
            clock: VirtualClock::new(),
            sources: vec![Box::new(source)],
            route: vec![vec![0]; method_count],
            chaos: None,
        }
    }

    /// One [`SimulatedSource`] serving every method, wrapped as an
    /// [`AsyncSimulatedSource`] over the federation's clock.
    pub fn single_simulated(source: SimulatedSource) -> Self {
        let clock = VirtualClock::new();
        let methods = crate::source::Source::methods(&source).clone();
        let method_count = methods.len();
        AsyncFederation {
            methods,
            sources: vec![Box::new(AsyncSimulatedSource::new(source, clock.clone()))],
            clock,
            route: vec![vec![0]; method_count],
            chaos: None,
        }
    }

    /// The virtual clock the federation's simulated latencies advance.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The shared access-method registry.
    pub fn methods(&self) -> &AccessMethods {
        &self.methods
    }

    /// The schema the federation ranges over.
    pub fn schema(&self) -> &Arc<Schema> {
        self.methods.schema()
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// The primary source serving `method`.
    pub fn source_for(&self, method: AccessMethodId) -> Option<&dyn AsyncSource> {
        self.route
            .get(method.index())
            .and_then(|r| r.first())
            .map(|&i| self.sources[i].as_ref())
    }

    /// The chaos controller, when one is attached.
    pub fn chaos(&self) -> Option<&ChaosController> {
        self.chaos.as_ref()
    }

    /// Routes an access along its replica set and starts it; the returned
    /// future resolves once the serving source's simulated round trips
    /// elapse on the shared clock. With a chaos controller attached the
    /// future walks the route exactly like [`crate::Federation::call`]
    /// (tick due churn events, skip dead / open-circuit replicas, feed
    /// breaker outcomes, count failovers), awaiting each attempted replica
    /// in order.
    pub fn call(&self, access: Access) -> SourceFuture<'_> {
        let Some(route) = self
            .route
            .get(access.method().index())
            .filter(|r| !r.is_empty())
        else {
            let err = SourceError::Unavailable {
                source: "<federation>".to_string(),
                reason: format!("no source serves {}", access.method()),
            };
            return Box::pin(async move { Err(err) });
        };
        let Some(chaos) = &self.chaos else {
            return self.sources[route[0]].call(access);
        };
        Box::pin(async move {
            for (idx, swap) in chaos.on_call() {
                match swap {
                    ModelSwap::Latency(l) => self.sources[idx].set_latency(l),
                    ModelSwap::Flaky(f) => self.sources[idx].set_flaky(f),
                }
            }
            let mut last_err: Option<SourceError> = None;
            for (position, &source_idx) in route.iter().enumerate() {
                match chaos.gate(source_idx) {
                    Gate::Dead | Gate::Open => continue,
                    Gate::Allow => {}
                }
                match self.sources[source_idx].call(access.clone()).await {
                    Ok(response) => {
                        chaos.record(source_idx, true);
                        if position > 0 {
                            chaos.note_failover();
                        }
                        return Ok(response);
                    }
                    Err(SourceError::Access(e)) => return Err(SourceError::Access(e)),
                    Err(err) => {
                        chaos.record(source_idx, false);
                        last_err = Some(err);
                    }
                }
            }
            Err(last_err.unwrap_or_else(|| SourceError::Unavailable {
                source: "<federation>".to_string(),
                reason: format!(
                    "every replica of {} is dead or open-circuit",
                    access.method()
                ),
            }))
        })
    }

    /// Aggregate statistics across every source.
    pub fn stats(&self) -> BackendStats {
        self.sources
            .iter()
            .fold(BackendStats::default(), |acc, s| acc.merged(&s.stats()))
    }

    /// Per-source statistics, in registration order (the async counterpart
    /// of [`crate::Federation::per_source_stats`] — the failure-injection
    /// tests pin the two against each other).
    pub fn per_source_stats(&self) -> Vec<(String, BackendStats)> {
        self.sources
            .iter()
            .map(|s| (s.name().to_string(), s.stats()))
            .collect()
    }

    /// Resets every source's statistics.
    pub fn reset_stats(&self) {
        for s in &self.sources {
            s.reset_stats();
        }
    }
}

/// Builder for [`AsyncFederation`].
pub struct AsyncFederationBuilder {
    methods: AccessMethods,
    clock: VirtualClock,
    sources: Vec<Box<dyn AsyncSource>>,
    route: Vec<Vec<usize>>,
    chaos: Option<ChaosOptions>,
}

impl std::fmt::Debug for AsyncFederationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncFederationBuilder")
            .field("methods", &self.methods.len())
            .field(
                "sources",
                &self.sources.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("route", &self.route)
            .finish()
    }
}

impl AsyncFederationBuilder {
    /// The clock the finished federation will run on (for wiring custom
    /// [`AsyncSource`] implementations to the same virtual time).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn register(
        mut self,
        source: Box<dyn AsyncSource>,
        method_names: &[&str],
        primary: bool,
    ) -> Result<Self, FederationError> {
        if !Arc::ptr_eq(source.methods().schema(), self.methods.schema()) {
            return Err(FederationError::SchemaMismatch {
                source: source.name().to_string(),
            });
        }
        let index = self.sources.len();
        for name in method_names {
            let id = self
                .methods
                .by_name(name)
                .map_err(|_| FederationError::UnknownMethod((*name).to_string()))?;
            let slot = &mut self.route[id.index()];
            if primary && !slot.is_empty() {
                return Err(FederationError::DuplicateRoute {
                    method: (*name).to_string(),
                });
            }
            slot.push(index);
        }
        self.sources.push(source);
        Ok(self)
    }

    /// Registers `source` as the primary server of the named methods. The
    /// source must range over the same schema instance as the federation.
    pub fn source(
        self,
        source: impl AsyncSource + 'static,
        method_names: &[&str],
    ) -> Result<Self, FederationError> {
        self.register(Box::new(source), method_names, true)
    }

    /// Registers `source` as a fallback replica of the named methods,
    /// appended to the end of each method's replica set. Replicas are only
    /// consulted under an attached chaos controller, when every
    /// earlier-listed replica is dead, open-circuit or failing.
    pub fn replica(
        self,
        source: impl AsyncSource + 'static,
        method_names: &[&str],
    ) -> Result<Self, FederationError> {
        self.register(Box::new(source), method_names, false)
    }

    /// Registers a [`SimulatedSource`] wrapped over the federation's clock
    /// (its latency model is awaited virtually, never slept).
    pub fn simulated(
        self,
        source: SimulatedSource,
        method_names: &[&str],
    ) -> Result<Self, FederationError> {
        let clock = self.clock.clone();
        self.source(AsyncSimulatedSource::new(source, clock), method_names)
    }

    /// Registers a [`SimulatedSource`] as a fallback replica, wrapped over
    /// the federation's clock (the async counterpart of
    /// [`crate::FederationBuilder::replica`]).
    pub fn simulated_replica(
        self,
        source: SimulatedSource,
        method_names: &[&str],
    ) -> Result<Self, FederationError> {
        let clock = self.clock.clone();
        self.replica(AsyncSimulatedSource::new(source, clock), method_names)
    }

    /// Attaches a chaos controller driven by the federation's own virtual
    /// clock. Because the executor advances that clock as awaited latencies
    /// elapse, `options.pace_micros_per_call` is forced to zero here: churn
    /// events fire when virtual time genuinely reaches them, not on a
    /// per-call pace heuristic (that heuristic exists only for the sync
    /// [`crate::Federation`], which has no executor clock).
    pub fn with_chaos(mut self, mut options: ChaosOptions) -> Self {
        options.pace_micros_per_call = 0;
        self.chaos = Some(options);
        self
    }

    /// Finalises the federation; every method must have a serving source.
    pub fn build(self) -> Result<AsyncFederation, FederationError> {
        let unrouted: Vec<String> = self
            .route
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_empty())
            .map(|(i, _)| {
                self.methods
                    .get(AccessMethodId(i as u32))
                    .map(|m| m.name().to_string())
                    .unwrap_or_else(|_| format!("#{i}"))
            })
            .collect();
        if !unrouted.is_empty() {
            return Err(FederationError::UnroutedMethods(unrouted));
        }
        let chaos = match self.chaos {
            Some(options) => {
                let names: Vec<&str> = self.sources.iter().map(|s| s.name()).collect();
                Some(ChaosController::new(&options, &names, self.clock.clone())?)
            }
            None => None,
        };
        Ok(AsyncFederation {
            methods: self.methods,
            clock: self.clock,
            sources: self.sources,
            route: self.route,
            chaos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_source::BlockingSource;
    use crate::chaos::{BreakerOptions, BreakerState, ChurnScript};
    use crate::executor::Executor;
    use crate::source::{FlakyModel, LatencyModel};
    use accrel_access::{binding, AccessMode};
    use accrel_schema::{Instance, Schema};

    fn setup() -> (AccessMethods, Instance) {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d), ("b", d)]).unwrap();
        b.relation("S", &[("a", d)]).unwrap();
        let schema = b.build();
        let mut mb = AccessMethods::builder(schema.clone());
        mb.add("RAcc", "R", &["a"], AccessMode::Dependent).unwrap();
        mb.add_free("SAll", "S", AccessMode::Dependent).unwrap();
        let methods = mb.build();
        let mut inst = Instance::new(schema);
        inst.insert_named("R", ["k", "v"]).unwrap();
        inst.insert_named("S", ["k"]).unwrap();
        (methods, inst)
    }

    #[test]
    fn routing_dispatches_and_advances_the_shared_clock() {
        let (methods, inst) = setup();
        let r_source = SimulatedSource::exact("r-provider", inst.clone(), methods.clone())
            .with_latency(LatencyModel::recorded(40));
        let s_source =
            BlockingSource::new(SimulatedSource::exact("s-provider", inst, methods.clone()));
        let federation = AsyncFederation::builder(methods.clone())
            .simulated(r_source, &["RAcc"])
            .unwrap()
            .source(s_source, &["SAll"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(federation.source_count(), 2);
        let r_acc = methods.by_name("RAcc").unwrap();
        let s_all = methods.by_name("SAll").unwrap();
        assert_eq!(federation.source_for(r_acc).unwrap().name(), "r-provider");
        assert_eq!(federation.source_for(s_all).unwrap().name(), "s-provider");

        let exec = Executor::new(federation.clock().clone());
        let r_call = exec.spawn(federation.call(Access::new(r_acc, binding(["k"]))));
        let s_call = exec.spawn(federation.call(Access::new(s_all, binding(Vec::<&str>::new()))));
        assert_eq!(exec.run(), 0);
        assert_eq!(r_call.take().unwrap().unwrap().len(), 1);
        assert_eq!(s_call.take().unwrap().unwrap().len(), 1);
        // Only the simulated provider's 40µs round trip advanced the clock.
        assert_eq!(federation.clock().now_micros(), 40);
        let per_source = federation.per_source_stats();
        assert_eq!(per_source.len(), 2);
        assert_eq!(per_source[0].1.source.calls, 1);
        assert_eq!(per_source[1].1.source.calls, 1);
        assert_eq!(federation.stats().source.calls, 2);
        federation.reset_stats();
        assert_eq!(federation.stats().source.calls, 0);
        assert!(format!("{federation:?}").contains("r-provider"));
    }

    /// Satellite regression: the half-open probe slot is single-flight.
    /// Two calls dispatched at the same virtual instant both find the
    /// primary's breaker `HalfOpen`; before the probe-claim fix both flew a
    /// probe (the derived `state()` cannot see the other call), doubling
    /// wire traffic against a source still presumed sick.
    #[test]
    fn half_open_probe_is_single_flight_across_concurrent_calls() {
        let (methods, inst) = setup();
        let primary = SimulatedSource::exact("primary", inst.clone(), methods.clone())
            .with_latency(LatencyModel::recorded(10))
            .with_flaky(FlakyModel {
                period: 1,
                fail_attempts: 9,
                retries: 0,
            });
        let backup = SimulatedSource::exact("backup", inst, methods.clone());
        let federation = AsyncFederation::builder(methods.clone())
            .simulated(primary, &["RAcc", "SAll"])
            .unwrap()
            .simulated_replica(backup, &["RAcc", "SAll"])
            .unwrap()
            .with_chaos(ChaosOptions {
                script: ChurnScript::new(),
                breaker: Some(BreakerOptions {
                    trip_threshold: 1,
                    cooldown_micros: 100,
                }),
                pace_micros_per_call: 0,
            })
            .build()
            .unwrap();
        let r_acc = methods.by_name("RAcc").unwrap();
        let exec = Executor::new(federation.clock().clone());

        // Trip the breaker: the primary fails once, the call fails over.
        let first = exec.spawn(federation.call(Access::new(r_acc, binding(["k"]))));
        assert_eq!(exec.run(), 0);
        assert_eq!(first.take().unwrap().unwrap().len(), 1);
        let chaos = federation.chaos().unwrap();
        assert_eq!(chaos.breaker_state(0), Some(BreakerState::Open));

        // Sit out the cooldown, then dispatch two calls concurrently. Both
        // gate at the same virtual instant under a HalfOpen breaker: the
        // first claims the probe (and awaits the primary's round trip), the
        // second must short-circuit straight to the backup.
        federation.clock().advance_micros(200);
        assert_eq!(chaos.breaker_state(0), Some(BreakerState::HalfOpen));
        let a = exec.spawn(federation.call(Access::new(r_acc, binding(["k"]))));
        let b = exec.spawn(federation.call(Access::new(r_acc, binding(["k"]))));
        assert_eq!(exec.run(), 0);
        assert_eq!(a.take().unwrap().unwrap().len(), 1);
        assert_eq!(b.take().unwrap().unwrap().len(), 1);

        // The primary saw exactly two wire calls (both failed): the
        // original trip and ONE half-open probe.
        let per_source = federation.per_source_stats();
        assert_eq!(per_source[0].0, "primary");
        assert_eq!(per_source[0].1.source.failures, 2);
        let stats = chaos.stats();
        assert_eq!(stats.short_circuited, 1);
        assert_eq!(stats.breaker_trips, 2); // initial trip + failed probe
        assert_eq!(stats.failovers, 3); // every call was served by the backup
    }

    #[test]
    fn single_simulated_federation_serves_everything() {
        let (methods, inst) = setup();
        let federation = AsyncFederation::single_simulated(SimulatedSource::exact(
            "only",
            inst,
            methods.clone(),
        ));
        for (id, _) in methods.iter() {
            assert!(federation.source_for(id).is_some());
        }
        assert_eq!(federation.schema().relation_count(), 2);
        assert_eq!(federation.clock().now_micros(), 0);
    }

    #[test]
    fn builder_rejects_bad_registrations() {
        let (methods, inst) = setup();
        let err = AsyncFederation::builder(methods.clone())
            .simulated(
                SimulatedSource::exact("s", inst.clone(), methods.clone()),
                &["Nope"],
            )
            .unwrap_err();
        assert!(matches!(err, FederationError::UnknownMethod(_)));
        let err = AsyncFederation::builder(methods.clone())
            .simulated(
                SimulatedSource::exact("a", inst.clone(), methods.clone()),
                &["RAcc"],
            )
            .unwrap()
            .simulated(
                SimulatedSource::exact("b", inst.clone(), methods.clone()),
                &["RAcc"],
            )
            .unwrap_err();
        assert!(matches!(err, FederationError::DuplicateRoute { .. }));
        let err = AsyncFederation::builder(methods.clone())
            .simulated(
                SimulatedSource::exact("a", inst.clone(), methods.clone()),
                &["RAcc"],
            )
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, FederationError::UnroutedMethods(_)));
        let (other_methods, other_inst) = setup();
        let err = AsyncFederation::builder(methods)
            .simulated(
                SimulatedSource::exact("other", other_inst, other_methods),
                &["RAcc"],
            )
            .unwrap_err();
        assert!(matches!(err, FederationError::SchemaMismatch { .. }));
    }
}
