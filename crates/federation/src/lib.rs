//! # accrel-federation
//!
//! The concurrent federation runtime: the execution layer that turns the
//! paper's "mediator querying many autonomous deep-Web sources" motivation
//! into a measurable subsystem.
//!
//! * [`Source`] — a thread-safe deep-Web source. [`SimulatedSource`]
//!   composes backend models (per-source [`LatencyModel`] distributions,
//!   deterministic [`FlakyModel`] transient failures with retry accounting,
//!   paged responses) over a hidden instance; [`PolicySource`] adapts the
//!   engine crate's [`accrel_engine::DeepWebSource`] and its response
//!   policies.
//! * [`Federation`] — the registry mapping access methods to the sources
//!   that serve them, with per-source and aggregate [`BackendStats`].
//! * [`BatchScheduler`] — executes relevance-verified batches of accesses
//!   concurrently through `std::thread::scope` while reporting exactly the
//!   sequential engine's `access_sequence`, relevance verdicts, certain
//!   answers and final configuration (see the [`scheduler`] module docs for
//!   the determinism invariant).
//! * [`parallel_relevance_sweep`] — fan-out evaluation of the (pure)
//!   relevance decision procedures across worker threads, each holding an
//!   O(relations) copy-on-write snapshot of the configuration
//!   ([`parallel_relevance_sweep_report`] additionally reports that no
//!   worker copied a shard).
//!
//! ## The async runtime
//!
//! High-latency sources want overlapping in-flight accesses, not more
//! threads. The [`executor`] module is a hand-rolled, dependency-free
//! single-threaded mini-executor ([`Executor`]) over a deterministic
//! [`VirtualClock`] timer wheel — latency models elapse as awaited virtual
//! sleeps, so throughput experiments need no real time at all. On top of
//! it:
//!
//! * [`AsyncSource`] — the async twin of [`Source`];
//!   [`AsyncSimulatedSource`] replays a [`SimulatedSource`]'s
//!   latency/flaky-retry/paging models as awaitable state machines (one
//!   virtual round trip per await), and [`BlockingSource`] lifts any sync
//!   source (e.g. [`PolicySource`]) into a one-poll future.
//! * [`AsyncFederation`] — the routing registry over async sources, owning
//!   the shared virtual clock.
//! * [`AsyncBatchScheduler`] — the *same* merge loop as [`BatchScheduler`]
//!   (shared, not copied), with batches realised as concurrently-polled
//!   futures capped by a FIFO [`Semaphore`] of `workers` permits; its
//!   sequential equivalence is pinned by the async grid in
//!   `tests/federation_equivalence.rs`, and `clock().now_micros()` measures
//!   a run's simulated makespan (the F2 harness sweep).
//!
//! ## The serving layer
//!
//! [`serving`] stacks a multi-tenant front end on the async runtime: a
//! [`QuerySessionRegistry`] admits many concurrent query sessions over one
//! shared [`AsyncFederation`], deduplicates identical in-flight accesses
//! across sessions (two sessions wanting the same access share one wire
//! call), and persists relevance verdicts across sessions through a shared
//! [`accrel_engine::SharedVerdictCache`]. The F3 harness table measures its
//! aggregate throughput and per-session latency percentiles against session
//! count.
//!
//! ## Executors
//!
//! All execution layers answer the same [`accrel_engine::RunRequest`]
//! through the [`accrel_engine::Executor`] trait: the engine crate's
//! [`accrel_engine::Sequential`], this crate's [`Threaded`] (scoped-thread
//! batches over a [`Federation`]), [`Async`] (virtual-clock futures over an
//! [`AsyncFederation`]) and [`Serving`] (one session on
//! the multi-tenant registry). The equivalence grid iterates executors, not
//! bespoke scheduler APIs.
//!
//! Garrison & Lee-style actor simulations motivate the backend models:
//! heterogeneous latency/failure behaviour makes the runtime measurable
//! without leaving the deterministic, offline test environment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod async_federation;
mod async_scheduler;
mod async_source;
pub mod chaos;
mod error;
pub mod executor;
mod federation;
pub mod journal;
pub mod scheduler;
pub mod serving;
mod source;
mod sweep;

pub use async_federation::{AsyncFederation, AsyncFederationBuilder};
pub use async_scheduler::{Async, AsyncBatchScheduler};
pub use async_source::{AsyncSimulatedSource, AsyncSource, BlockingSource, SourceFuture};
pub use chaos::{
    BreakerOptions, BreakerState, ChaosController, ChaosOptions, ChurnAction, ChurnEvent,
    ChurnScript, ChurnScriptBuilder, CircuitBreaker,
};
pub use error::{FederationError, SourceError};
pub use executor::{yield_now, Executor, JoinHandle, Semaphore, Sleep, VirtualClock, YieldNow};
pub use federation::{Federation, FederationBuilder};
pub use journal::RunJournal;
pub use scheduler::{BatchScheduler, Threaded};
pub use serving::{QuerySessionRegistry, Serving, ServingOptions, ServingReport, SessionReport};
pub use source::{BackendStats, FlakyModel, LatencyModel, PolicySource, SimulatedSource, Source};
pub use sweep::{parallel_relevance_sweep, parallel_relevance_sweep_report, SweepReport};

/// Re-exported from `accrel-engine` so existing
/// `accrel_federation::SpeculationMode` imports keep compiling now that the
/// speculation knob lives on [`accrel_engine::RunOptions`].
pub use accrel_engine::{InvalidationMode, SpeculationMode};

/// The historical name of the threaded scheduler's options; the `engine`
/// nesting is gone — the engine fields live directly on
/// [`accrel_engine::RunOptions`].
#[deprecated(since = "0.1.0", note = "renamed to `RunOptions` (now flat)")]
pub type BatchOptions = accrel_engine::RunOptions;

/// The historical name of the async scheduler's options; the `engine`
/// nesting is gone and the `in_flight` knob is
/// [`accrel_engine::RunOptions::workers`].
#[deprecated(
    since = "0.1.0",
    note = "renamed to `RunOptions` (in_flight is now `workers`)"
)]
pub type AsyncBatchOptions = accrel_engine::RunOptions;
