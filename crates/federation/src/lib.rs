//! # accrel-federation
//!
//! The concurrent federation runtime: the execution layer that turns the
//! paper's "mediator querying many autonomous deep-Web sources" motivation
//! into a measurable subsystem.
//!
//! * [`Source`] — a thread-safe deep-Web source. [`SimulatedSource`]
//!   composes backend models (per-source [`LatencyModel`] distributions,
//!   deterministic [`FlakyModel`] transient failures with retry accounting,
//!   paged responses) over a hidden instance; [`PolicySource`] adapts the
//!   engine crate's [`accrel_engine::DeepWebSource`] and its response
//!   policies.
//! * [`Federation`] — the registry mapping access methods to the sources
//!   that serve them, with per-source and aggregate [`BackendStats`].
//! * [`BatchScheduler`] — executes relevance-verified batches of accesses
//!   concurrently through `std::thread::scope` while reporting exactly the
//!   sequential engine's `access_sequence`, relevance verdicts, certain
//!   answers and final configuration (see the [`scheduler`] module docs for
//!   the determinism invariant).
//! * [`parallel_relevance_sweep`] — fan-out evaluation of the (pure)
//!   relevance decision procedures across worker threads, each holding an
//!   O(relations) copy-on-write snapshot of the configuration
//!   ([`parallel_relevance_sweep_report`] additionally reports that no
//!   worker copied a shard).
//!
//! Garrison & Lee-style actor simulations motivate the backend models:
//! heterogeneous latency/failure behaviour makes the runtime measurable
//! without leaving the deterministic, offline test environment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod federation;
pub mod scheduler;
mod source;
mod sweep;

pub use error::{FederationError, SourceError};
pub use federation::{Federation, FederationBuilder};
pub use scheduler::{BatchOptions, BatchScheduler, SpeculationMode};
pub use source::{BackendStats, FlakyModel, LatencyModel, PolicySource, SimulatedSource, Source};
pub use sweep::{parallel_relevance_sweep, parallel_relevance_sweep_report, SweepReport};
