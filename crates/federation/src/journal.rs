//! A durable, append-only run journal.
//!
//! Serialises what a run *decided* — its access sequence, its relevance
//! verdict log, and the version-stamped entries of the cross-session
//! [`SharedVerdictCache`] — to a line-oriented text file, and replays it
//! elsewhere:
//!
//! * **Reproducibility.** [`RunJournal::read_runs`] rebuilds the journaled
//!   access sequences and [`VerdictRecord`] logs exactly, so journal-vs-live
//!   equality can be asserted across processes (à la a causal chain: the
//!   journal is the evidence of what the run did).
//! * **Warm starts.** [`RunJournal::replay`] feeds the journaled cache
//!   entries into a fresh [`SharedVerdictCache`] via its `insert` hook. A
//!   new process (or a fresh serving registry in the same process) then
//!   answers every journaled relevance check as a shared-cache hit — zero
//!   decision procedures re-run for journaled verdicts.
//!
//! The format is deliberately plain: one record per line, space-separated
//! tokens, values percent-escaped. Appending runs is concatenation; partial
//! trailing lines (a crashed writer) are detected and skipped.
//!
//! Verdict-cache keys embed `RelationId` / `AccessMethodId` indices and
//! relation *fact counts*, so a journal is only meaningful to a process
//! loading the same schema, methods, and initial configuration — exactly
//! the serving layer's `verdict_class` contract, whose class discriminant
//! (also journaled) fences off mismatched trajectories.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

use accrel_access::{Access, AccessMethodId, Binding};
use accrel_engine::relevance::{RelevanceKind, SharedVerdictCache, VerdictRecord};
use accrel_engine::RunReport;
use accrel_schema::{DomainId, ReadSet, RelationId, Value, ValueId};

/// One run as read back from a journal: the executed access sequence and
/// the relevance verdict log, byte-for-byte what the live run reported.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledRun {
    /// The accesses executed, in execution order.
    pub access_sequence: Vec<Access>,
    /// The relevance decision log, in order.
    pub relevance_verdicts: Vec<VerdictRecord>,
}

/// Summary of a [`RunJournal::replay`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Shared-cache entries inserted into the target cache.
    pub verdicts_restored: usize,
    /// Runs found in the journal.
    pub runs: usize,
    /// Lines skipped because they were malformed.
    pub skipped_lines: usize,
    /// The journal ended mid-record (no trailing newline — a crashed
    /// appender). The partial final line was skipped, whether or not its
    /// prefix happened to parse; everything before it replayed normally.
    pub torn_tail: bool,
}

/// Reader/writer for the append-only run journal (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunJournal;

const MAGIC: &str = "accrel-journal v1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
        out.push(byte as char);
    }
    Some(out)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Sym(s) => {
            out.push_str(" s:");
            out.push_str(&escape(s));
        }
        Value::Int(i) => {
            let _ = write!(out, " i:{i}");
        }
        Value::Fresh(n) => {
            let _ = write!(out, " f:{n}");
        }
    }
}

fn parse_value(token: &str) -> Option<Value> {
    let (tag, rest) = token.split_at_checked(2)?;
    match tag {
        "s:" => Some(Value::sym(unescape(rest)?)),
        "i:" => Some(Value::int(rest.parse().ok()?)),
        "f:" => Some(Value::fresh(rest.parse().ok()?)),
        _ => None,
    }
}

fn write_access(out: &mut String, access: &Access) {
    let _ = write!(out, " m{}", access.method().index());
    for value in access.binding().values() {
        write_value(out, value);
    }
}

/// Parses ` m<idx> <value>*` starting at `tokens` (already split).
fn parse_access(tokens: &[&str]) -> Option<Access> {
    let method = tokens.first()?.strip_prefix('m')?.parse::<u32>().ok()?;
    let values: Option<Vec<Value>> = tokens[1..].iter().map(|t| parse_value(t)).collect();
    Some(Access::new(AccessMethodId(method), Binding::new(values?)))
}

/// Serialises a shared entry's recorded read set as ` R<n> <token>*` (or
/// ` R-` when the publishing run attached none). Tokens are one per read:
/// `a`/`z` for the whole-store / whole-adom flags, `l<rel>` for relation
/// scans, `p<rel>,<vid>` for key probes, `d<dom>` for domain enumerations,
/// `x<dom>,<value>` for visited-prefix domain reads (precise mode),
/// `q<vid>,<dom>` for adom membership, and `u<rel>,<value>` /
/// `w<dom>,<value>` for probes whose value the interner did not know at
/// read time. Sorted for deterministic output. Legacy lines written before
/// prefixes existed carry no `x` tokens and parse unchanged — sound,
/// because those publishers recorded coarsely: any adom walk they performed
/// shows up as the domain-unscoped `z` flag, which subsumes every prefix.
fn write_reads(out: &mut String, reads: Option<&ReadSet>) {
    let Some(rs) = reads else {
        out.push_str(" R-");
        return;
    };
    let mut tokens: Vec<String> = Vec::new();
    if rs.all {
        tokens.push("a".into());
    }
    if rs.adom_all {
        tokens.push("z".into());
    }
    for rel in &rs.relations {
        tokens.push(format!("l{}", rel.index()));
    }
    for (rel, vid) in &rs.pairs {
        tokens.push(format!("p{},{}", rel.index(), vid.0));
    }
    for dom in &rs.adom_domains {
        tokens.push(format!("d{}", dom.0));
    }
    for (dom, bound) in &rs.adom_prefixes {
        let mut v = String::new();
        write_value(&mut v, bound);
        tokens.push(format!("x{},{}", dom.0, v.trim_start()));
    }
    for (vid, dom) in &rs.adom_pairs {
        tokens.push(format!("q{},{}", vid.0, dom.0));
    }
    for (rel, value) in &rs.unknown_values {
        let mut v = String::new();
        write_value(&mut v, value);
        tokens.push(format!("u{},{}", rel.index(), v.trim_start()));
    }
    for (value, dom) in &rs.adom_unknown {
        let mut v = String::new();
        write_value(&mut v, value);
        tokens.push(format!("w{},{}", dom.0, v.trim_start()));
    }
    tokens.sort_unstable();
    let _ = write!(out, " R{}", tokens.len());
    for t in &tokens {
        out.push(' ');
        out.push_str(t);
    }
}

/// Parses the ` R…` section written by [`write_reads`], returning the read
/// set and how many tokens it consumed. Lines from journals written before
/// read sets existed carry no `R` token; callers treat that as `None`.
fn parse_reads(tokens: &[&str]) -> Option<(Option<ReadSet>, usize)> {
    let first = tokens.first()?;
    if *first == "R-" {
        return Some((None, 1));
    }
    let n: usize = first.strip_prefix('R')?.parse().ok()?;
    let body = tokens.get(1..1 + n)?;
    let mut rs = ReadSet::default();
    for t in body {
        let (tag, rest) = t.split_at_checked(1)?;
        match tag {
            "a" if rest.is_empty() => rs.all = true,
            "z" if rest.is_empty() => rs.adom_all = true,
            "l" => {
                rs.relations.insert(RelationId(rest.parse().ok()?));
            }
            "p" => {
                let (r, v) = rest.split_once(',')?;
                rs.pairs
                    .insert((RelationId(r.parse().ok()?), ValueId(v.parse().ok()?)));
            }
            "d" => {
                rs.adom_domains.insert(DomainId(rest.parse().ok()?));
            }
            "x" => {
                let (d, v) = rest.split_once(',')?;
                rs.adom_prefixes
                    .insert(DomainId(d.parse().ok()?), parse_value(v)?);
            }
            "q" => {
                let (v, d) = rest.split_once(',')?;
                rs.adom_pairs
                    .insert((ValueId(v.parse().ok()?), DomainId(d.parse().ok()?)));
            }
            "u" => {
                let (r, v) = rest.split_once(',')?;
                rs.unknown_values
                    .insert((RelationId(r.parse().ok()?), parse_value(v)?));
            }
            "w" => {
                let (d, v) = rest.split_once(',')?;
                rs.adom_unknown
                    .insert((parse_value(v)?, DomainId(d.parse().ok()?)));
            }
            _ => return None,
        }
    }
    Some((Some(rs), 1 + n))
}

fn kind_tag(kind: RelevanceKind) -> &'static str {
    match kind {
        RelevanceKind::Immediate => "I",
        RelevanceKind::LongTerm => "L",
    }
}

fn parse_kind(tag: &str) -> Option<RelevanceKind> {
    match tag {
        "I" => Some(RelevanceKind::Immediate),
        "L" => Some(RelevanceKind::LongTerm),
        _ => None,
    }
}

impl RunJournal {
    /// Serialises one run (its access sequence and verdict log) as journal
    /// lines. The result is appendable: concatenating serialised runs and
    /// cache snapshots yields a valid journal.
    pub fn serialize_run(report: &RunReport) -> String {
        let mut out = String::new();
        out.push_str("run\n");
        for access in &report.access_sequence {
            out.push_str("access");
            write_access(&mut out, access);
            out.push('\n');
        }
        for record in &report.relevance_verdicts {
            let _ = write!(
                out,
                "verdict {} {}",
                kind_tag(record.kind),
                if record.verdict { 't' } else { 'f' }
            );
            write_access(&mut out, &record.access);
            out.push('\n');
        }
        out
    }

    /// Serialises every entry of `cache` as journal lines.
    pub fn serialize_cache(cache: &SharedVerdictCache) -> String {
        let mut entries = cache.entries();
        // Deterministic output: sort by the full key's debug-stable fields
        // (the key is unique per (class, kind, access, deps), so the read
        // set never needs to participate).
        entries.sort_by(|a, b| (a.0, a.1, &a.2, &a.3, a.4).cmp(&(b.0, b.1, &b.2, &b.3, b.4)));
        let mut out = String::new();
        for (class, kind, access, deps, verdict, reads) in entries {
            let _ = write!(
                out,
                "shared {class:x} {} {} {}",
                kind_tag(kind),
                if verdict { 't' } else { 'f' },
                deps.len()
            );
            for (relation, count) in &deps {
                let _ = write!(out, " r{}:{}", relation.index(), count);
            }
            write_reads(&mut out, reads.as_ref());
            write_access(&mut out, &access);
            out.push('\n');
        }
        out
    }

    /// Creates (truncating) a journal at `path` holding `runs` and the
    /// current contents of `cache`.
    pub fn write_to(
        path: impl AsRef<Path>,
        runs: &[&RunReport],
        cache: &SharedVerdictCache,
    ) -> io::Result<()> {
        let mut file = File::create(path)?;
        writeln!(file, "{MAGIC}")?;
        for run in runs {
            file.write_all(Self::serialize_run(run).as_bytes())?;
        }
        file.write_all(Self::serialize_cache(cache).as_bytes())?;
        file.flush()
    }

    /// Appends one run to an existing journal (creating it, with its header,
    /// if absent).
    pub fn append_run(path: impl AsRef<Path>, report: &RunReport) -> io::Result<()> {
        let path = path.as_ref();
        let fresh = !path.exists();
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if fresh {
            writeln!(file, "{MAGIC}")?;
        }
        file.write_all(Self::serialize_run(report).as_bytes())?;
        file.flush()
    }

    /// Reads back every journaled run. Malformed lines and a torn final
    /// line are skipped, not fatal (an interrupted append leaves at most
    /// one partial record, always last).
    pub fn read_runs(path: impl AsRef<Path>) -> io::Result<Vec<JournaledRun>> {
        let mut runs = Vec::new();
        Self::scan(path, |line| match line {
            Record::RunStart => runs.push(JournaledRun {
                access_sequence: Vec::new(),
                relevance_verdicts: Vec::new(),
            }),
            Record::Access(access) => {
                if let Some(run) = runs.last_mut() {
                    run.access_sequence.push(access);
                }
            }
            Record::Verdict(record) => {
                if let Some(run) = runs.last_mut() {
                    run.relevance_verdicts.push(record);
                }
            }
            Record::Shared { .. } => {}
        })
        .map(|_| runs)
    }

    /// Replays the journal at `path` into `cache`: every journaled shared
    /// verdict is inserted under its original version-stamped key, so a
    /// subsequent run following the same trajectory answers those checks as
    /// shared hits — zero re-run decision procedures for journaled
    /// verdicts.
    pub fn replay(path: impl AsRef<Path>, cache: &SharedVerdictCache) -> io::Result<ReplaySummary> {
        let mut summary = ReplaySummary::default();
        let stats = Self::scan(path, |record| match record {
            Record::RunStart => summary.runs += 1,
            Record::Shared {
                class,
                kind,
                access,
                deps,
                verdict,
                reads,
            } => {
                cache.insert(class, kind, access, deps, verdict, reads.map(|r| *r));
                summary.verdicts_restored += 1;
            }
            Record::Access(_) | Record::Verdict(_) => {}
        })?;
        summary.skipped_lines = stats.skipped;
        summary.torn_tail = stats.torn_tail;
        Ok(summary)
    }

    /// Parses the journal line by line, invoking `sink` per valid record;
    /// returns how many interior lines were skipped as malformed and
    /// whether the final line was torn. A torn tail — the file does not end
    /// in a newline, so the last append never completed — is *always*
    /// skipped, even when its prefix happens to parse: a crash mid-append
    /// can leave a record whose truncation is still token-valid but lies
    /// about what the run did.
    fn scan(path: impl AsRef<Path>, mut sink: impl FnMut(Record)) -> io::Result<ScanStats> {
        let content = std::fs::read_to_string(path)?;
        let mut stats = ScanStats::default();
        let mut lines: Vec<&str> = content.split('\n').collect();
        // A complete journal ends in '\n', so the split yields a trailing
        // empty segment; anything else is the partial final record.
        match lines.pop() {
            Some("") | None => {}
            Some(_) => stats.torn_tail = true,
        }
        let mut lines = lines.into_iter();
        match lines.next() {
            Some(header) if header == MAGIC => {}
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not an accrel journal (bad or missing header)",
                ))
            }
        }
        for line in lines {
            if line.is_empty() {
                continue;
            }
            match Record::parse(line) {
                Some(record) => sink(record),
                None => stats.skipped += 1,
            }
        }
        Ok(stats)
    }
}

/// What [`RunJournal::scan`] observed beyond the records themselves.
#[derive(Debug, Clone, Copy, Default)]
struct ScanStats {
    skipped: usize,
    torn_tail: bool,
}

enum Record {
    RunStart,
    Access(Access),
    Verdict(VerdictRecord),
    Shared {
        class: u64,
        kind: RelevanceKind,
        access: Access,
        deps: Vec<(RelationId, usize)>,
        verdict: bool,
        // Boxed: a `ReadSet` is several hundred bytes of hash sets, and
        // most journal lines are plain `access`/`verdict` records.
        reads: Option<Box<ReadSet>>,
    },
}

impl Record {
    fn parse(line: &str) -> Option<Record> {
        let tokens: Vec<&str> = line.split(' ').collect();
        match *tokens.first()? {
            "run" if tokens.len() == 1 => Some(Record::RunStart),
            "access" => Some(Record::Access(parse_access(&tokens[1..])?)),
            "verdict" => {
                let kind = parse_kind(tokens.get(1)?)?;
                let verdict = parse_bool(tokens.get(2)?)?;
                let access = parse_access(&tokens[3..])?;
                Some(Record::Verdict(VerdictRecord {
                    access,
                    kind,
                    verdict,
                }))
            }
            "shared" => {
                let class = u64::from_str_radix(tokens.get(1)?, 16).ok()?;
                let kind = parse_kind(tokens.get(2)?)?;
                let verdict = parse_bool(tokens.get(3)?)?;
                let ndeps: usize = tokens.get(4)?.parse().ok()?;
                let dep_tokens = tokens.get(5..5 + ndeps)?;
                let deps: Option<Vec<(RelationId, usize)>> = dep_tokens
                    .iter()
                    .map(|t| {
                        let (rel, count) = t.strip_prefix('r')?.split_once(':')?;
                        Some((RelationId(rel.parse().ok()?), count.parse().ok()?))
                    })
                    .collect();
                let rest = tokens.get(5 + ndeps..)?;
                // Journals written before read sets existed jump straight to
                // the access (`m…`); treat those entries as read-set-free.
                let (reads, consumed) = if rest.first().is_some_and(|t| t.starts_with('R')) {
                    parse_reads(rest)?
                } else {
                    (None, 0)
                };
                let access = parse_access(rest.get(consumed..)?)?;
                Some(Record::Shared {
                    class,
                    kind,
                    access,
                    deps: deps?,
                    verdict,
                    reads: reads.map(Box::new),
                })
            }
            _ => None,
        }
    }
}

fn parse_bool(token: &str) -> Option<bool> {
    match token {
        "t" => Some(true),
        "f" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accrel_access::binding;

    #[test]
    fn values_round_trip_through_escaping() {
        for value in [
            Value::sym("plain"),
            Value::sym("with space"),
            Value::sym("per%cent"),
            Value::sym("new\nline"),
            Value::int(-42),
            Value::fresh(7),
        ] {
            let mut out = String::new();
            write_value(&mut out, &value);
            let token = out.trim_start();
            assert_eq!(parse_value(token), Some(value.clone()), "token `{token}`");
        }
    }

    #[test]
    fn accesses_round_trip() {
        let access = Access::new(AccessMethodId(3), binding(["k v", "w"]));
        let mut out = String::new();
        write_access(&mut out, &access);
        let tokens: Vec<&str> = out.trim_start().split(' ').collect();
        assert_eq!(parse_access(&tokens), Some(access));
    }

    #[test]
    fn cache_entries_round_trip_through_a_file() {
        let cache = SharedVerdictCache::new();
        let access = Access::new(AccessMethodId(1), binding(["x"]));
        // One entry with an exact read set exercising every token kind
        // (including values with characters the escaper must handle), one
        // without.
        let mut reads = ReadSet::default();
        reads.relations.insert(RelationId(1));
        reads.pairs.insert((RelationId(0), ValueId(7)));
        reads
            .unknown_values
            .insert((RelationId(2), Value::sym("odd value,with comma")));
        reads.adom_all = true;
        reads.adom_domains.insert(DomainId(0));
        reads
            .adom_prefixes
            .insert(DomainId(4), Value::sym("bound value"));
        reads.adom_pairs.insert((ValueId(3), DomainId(1)));
        reads.adom_unknown.insert((Value::int(-9), DomainId(2)));
        cache.insert(
            0xdead_beef,
            RelevanceKind::LongTerm,
            access.clone(),
            vec![(RelationId(0), 12), (RelationId(2), 3)],
            true,
            Some(reads),
        );
        cache.insert(
            0xdead_beef,
            RelevanceKind::Immediate,
            access.clone(),
            vec![(RelationId(0), 12)],
            false,
            None,
        );
        let dir = std::env::temp_dir().join(format!("accrel-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache_round_trip.journal");
        RunJournal::write_to(&path, &[], &cache).unwrap();
        let restored = SharedVerdictCache::new();
        let summary = RunJournal::replay(&path, &restored).unwrap();
        assert_eq!(summary.verdicts_restored, 2);
        assert_eq!(summary.skipped_lines, 0);
        let mut want = cache.entries();
        let mut got = restored.entries();
        want.sort_by(|a, b| (a.1, &a.2).cmp(&(b.1, &b.2)));
        got.sort_by(|a, b| (a.1, &a.2).cmp(&(b.1, &b.2)));
        assert_eq!(want, got);
        std::fs::remove_file(&path).ok();
    }

    /// Satellite regression (cross-process dep-version ordering): two
    /// processes may enumerate a verdict's dependency relations in different
    /// orders — e.g. a journal written from an older HashMap-ordered
    /// snapshot. Publishing and probing must canonicalise the stamp, so an
    /// entry inserted with reversed dep order is still found by a lookup
    /// using sorted order (and vice versa).
    #[test]
    fn shared_keys_canonicalise_dep_version_order() {
        let cache = SharedVerdictCache::new();
        let access = Access::new(AccessMethodId(0), binding(["k"]));
        // Deliberately unsorted, as a foreign journal might carry it.
        cache.insert(
            9,
            RelevanceKind::LongTerm,
            access.clone(),
            vec![(RelationId(2), 3), (RelationId(0), 12)],
            true,
            None,
        );
        let entries = cache.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].3,
            vec![(RelationId(0), 12), (RelationId(2), 3)],
            "stored stamp must be in canonical (sorted) order"
        );
        // Re-inserting under the sorted order must overwrite, not duplicate.
        cache.insert(
            9,
            RelevanceKind::LongTerm,
            access,
            vec![(RelationId(0), 12), (RelationId(2), 3)],
            true,
            None,
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn truncated_tail_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("accrel-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.journal");
        // The torn line's prefix still parses as a valid token — it must be
        // dropped anyway, because a crash mid-append can truncate a record
        // into a different but well-formed one.
        std::fs::write(
            &path,
            format!("{MAGIC}\nrun\naccess m0 s:ok\naccess m0 s:truncat"),
        )
        .unwrap();
        let runs = RunJournal::read_runs(&path).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].access_sequence.len(), 1, "torn tail must be cut");
        let cache = SharedVerdictCache::new();
        let summary = RunJournal::replay(&path, &cache).unwrap();
        assert!(summary.torn_tail);
        assert_eq!(summary.skipped_lines, 0);
        // A genuinely malformed *interior* line is counted as skipped; the
        // newline-terminated tail is not torn.
        std::fs::write(
            &path,
            format!("{MAGIC}\nrun\naccess m0 q\naccess m0 s:ok\n"),
        )
        .unwrap();
        let summary = RunJournal::replay(&path, &cache).unwrap();
        assert_eq!(summary.skipped_lines, 1);
        assert_eq!(summary.runs, 1);
        assert!(!summary.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    /// Satellite: a header-only journal with no trailing newline is a torn
    /// header — not a valid journal at all.
    #[test]
    fn torn_header_is_an_error() {
        let dir = std::env::temp_dir().join(format!("accrel-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn_header.journal");
        std::fs::write(&path, MAGIC).unwrap();
        assert!(RunJournal::read_runs(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// Satellite: property grid for `R`-token escaping — read sets whose
    /// values carry spaces, percent signs and newlines (the characters the
    /// escaper rewrites) round-trip bit-for-bit through write/parse, for
    /// every value-bearing token kind including the precise-mode prefix
    /// entries.
    #[test]
    fn read_set_tokens_round_trip_awkward_values() {
        let awkward = [
            Value::sym("plain"),
            Value::sym("with space"),
            Value::sym("per%cent"),
            Value::sym("new\nline"),
            Value::sym("%20pre-escaped"),
            Value::sym("comma,inside"),
            Value::sym("  "),
            Value::int(i64::MIN),
            Value::fresh(u64::MAX),
        ];
        for (i, value) in awkward.iter().enumerate() {
            for (j, other) in awkward.iter().enumerate() {
                let mut rs = ReadSet::default();
                rs.adom_prefixes.insert(DomainId(i as u32), value.clone());
                rs.adom_prefixes
                    .insert(DomainId(100 + j as u32), other.clone());
                rs.unknown_values.insert((RelationId(1), value.clone()));
                rs.adom_unknown.insert((other.clone(), DomainId(3)));
                rs.adom_domains.insert(DomainId(7));
                rs.pairs.insert((RelationId(0), ValueId(9)));
                let mut out = String::new();
                write_reads(&mut out, Some(&rs));
                let tokens: Vec<&str> = out.trim_start().split(' ').collect();
                let (parsed, consumed) = parse_reads(&tokens).expect("tokens must parse");
                assert_eq!(consumed, tokens.len());
                assert_eq!(parsed.as_ref(), Some(&rs), "case ({i}, {j})");
            }
        }
        // The no-read-set marker round-trips too.
        let mut out = String::new();
        write_reads(&mut out, None);
        assert_eq!(out, " R-");
        assert_eq!(parse_reads(&["R-"]), Some((None, 1)));
    }

    /// Satellite: a legacy `shared` line written before read sets existed
    /// (no `R` token at all) parses as reads-absent, and a coarse line from
    /// the pre-prefix format (`z`, no `x` tokens) parses to the same coarse
    /// read set it was written from — both stay sound under the precise
    /// eviction rule because `adom_all` subsumes every prefix.
    #[test]
    fn legacy_shared_lines_parse_without_read_sets() {
        let dir = std::env::temp_dir().join(format!("accrel-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.journal");
        std::fs::write(
            &path,
            format!("{MAGIC}\nshared 2a L t 1 r0:5 m1 s:x\nshared 2a I f 0 R2 l0 z m0 s:y\n"),
        )
        .unwrap();
        let cache = SharedVerdictCache::new();
        let summary = RunJournal::replay(&path, &cache).unwrap();
        assert_eq!(summary.verdicts_restored, 2);
        assert_eq!(summary.skipped_lines, 0);
        assert!(!summary.torn_tail);
        let entries = cache.entries();
        let reads_absent = entries
            .iter()
            .find(|e| e.1 == RelevanceKind::LongTerm)
            .unwrap();
        assert_eq!(reads_absent.5, None, "pre-read-set line must carry None");
        let coarse = entries
            .iter()
            .find(|e| e.1 == RelevanceKind::Immediate)
            .unwrap();
        let rs = coarse.5.as_ref().unwrap();
        assert!(rs.adom_all, "coarse adom flag must survive");
        assert!(rs.adom_prefixes.is_empty());
        assert!(rs.relations.contains(&RelationId(0)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_is_an_error() {
        let dir = std::env::temp_dir().join(format!("accrel-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_header.journal");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(RunJournal::read_runs(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
