//! Multi-tenant query serving: many concurrent query sessions over one
//! shared [`AsyncFederation`].
//!
//! A mediator in the paper's sense does not answer one query and exit — it
//! *serves*: queries arrive concurrently, and the autonomous sources behind
//! the access methods are a shared, expensive resource. This module stacks
//! that serving layer on the async runtime:
//!
//! * [`QuerySessionRegistry`] admits up to `max_sessions` concurrent query
//!   sessions (a FIFO [`Semaphore`], so admission order is arrival order)
//!   over one federation and one initial configuration, each session running
//!   the shared sans-IO merge loop on the virtual clock. Sessions yield
//!   between batches ([`crate::yield_now`]), so they interleave round-robin
//!   instead of running to completion one after another.
//! * **Cross-session access deduplication** — an in-flight table keyed by
//!   [`Access::stable_hash`]: when a session wants an access that another
//!   session's wire call is already fetching, it *joins* that call and
//!   shares its response instead of dialing the source again. Per-session
//!   [`SessionStats`] attribute shared calls fractionally
//!   (`fractional_calls` sums `1/participants` per call), while the
//!   aggregate [`BackendStats`] count each wire call exactly once.
//! * **Cross-session verdict sharing** — sessions attach the registry's
//!   [`SharedVerdictCache`] to their relevance oracles, so a verdict
//!   computed by one session (or a *previous* `serve` call on the same
//!   registry) is reused by every later session in the same verdict class
//!   (same initial configuration, query, strategy and options). The cache
//!   is version-keyed by the verdict's dependency relations, so entries
//!   retire automatically when a relevant relation grows.
//!
//! Because joined sessions receive the leader's response and the sources
//! are deterministic functions of the access, every session still reports
//! exactly what an independent sequential run would: the
//! serving-vs-sequential grid in `tests/serving_equivalence.rs` pins
//! byte-for-byte equality of access sequences, verdict logs, certain
//! answers and final configurations. The F3 harness table measures what the
//! sharing buys: aggregate throughput and per-session latency percentiles
//! against session count.

use std::cell::RefCell;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::future::Future;
use std::hash::{Hash, Hasher};
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use accrel_access::{Access, Response};
use accrel_engine::relevance::SharedVerdictCache;
use accrel_engine::{ChaosStats, RunReport, RunRequest, SourceStats};
use accrel_schema::Configuration;

use crate::async_federation::AsyncFederation;
use crate::error::SourceError;
use crate::executor::{yield_now, Executor, Semaphore};
use crate::scheduler::{MergeLoop, MergeStep};
use crate::source::BackendStats;

/// Knobs of the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingOptions {
    /// Maximum number of concurrently *admitted* sessions; arrivals beyond
    /// this wait in FIFO order for a session slot. Zero is promoted to one.
    pub max_sessions: usize,
    /// Maximum number of wire calls in flight across all sessions (joined
    /// calls do not consume a permit — they ride an existing wire call).
    /// Zero is promoted to one.
    pub max_in_flight_accesses: usize,
    /// Share identical in-flight accesses across sessions.
    pub dedup: bool,
    /// Share relevance verdicts across sessions (and across `serve` calls)
    /// through the registry's [`SharedVerdictCache`].
    pub share_verdicts: bool,
}

impl Default for ServingOptions {
    fn default() -> Self {
        Self {
            max_sessions: 16,
            max_in_flight_accesses: 32,
            dedup: true,
            share_verdicts: true,
        }
    }
}

/// Per-session backend traffic, as the session experienced it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Accesses the session's merge loop requested (led or joined).
    pub calls: usize,
    /// Calls this session dialed a source for (it was the *leader*).
    pub led_calls: usize,
    /// Calls this session shared with another session's wire call.
    pub joined_calls: usize,
    /// Fair-share attribution: each call contributes `1/participants`, so
    /// summing over sessions reproduces the wire-call count.
    pub fractional_calls: f64,
    /// Calls that ultimately failed.
    pub failures: usize,
    /// Tuples the session received across its successful calls.
    pub tuples_returned: usize,
    /// Virtual time from admission to completion, in microseconds.
    pub latency_micros: u64,
}

/// One session's outcome: the familiar engine report plus the serving
/// layer's traffic attribution.
#[derive(Debug)]
pub struct SessionReport {
    /// Index of the session's request in the `serve` slice.
    pub session: usize,
    /// The run report — identical to an independent sequential run against
    /// sources returning the same responses (`source_stats` holds the
    /// session's *attributed* traffic: joined calls count as calls here,
    /// but only once in the aggregate).
    pub report: RunReport,
    /// The session's serving-layer traffic.
    pub stats: SessionStats,
}

/// Outcome of one [`QuerySessionRegistry::serve`] call.
#[derive(Debug)]
pub struct ServingReport {
    /// Per-session outcomes, in request order.
    pub sessions: Vec<SessionReport>,
    /// Backend traffic of the whole serve, with each wire call counted
    /// exactly once (deduplication makes this strictly less than the sum of
    /// per-session calls whenever sessions overlapped on an access).
    pub aggregate: BackendStats,
    /// Per-source backend traffic of the whole serve, in registration order
    /// — wire calls *and* the retry/failure split each backend absorbed or
    /// surfaced, so a flaky replica's churn is visible per source rather
    /// than folded into the aggregate.
    pub per_source: Vec<(String, BackendStats)>,
    /// Chaos traffic of the whole serve (all zeros without an attached
    /// [`crate::ChaosController`]).
    pub chaos: ChaosStats,
    /// Wire calls actually dialed (equals `aggregate.source.calls +
    /// aggregate.source.failures` for these sources; kept separately so the
    /// invariant is checkable).
    pub wire_calls: usize,
    /// Calls answered by joining another session's in-flight wire call.
    pub joined_calls: usize,
    /// Virtual time from the first admission to the last completion.
    pub makespan_micros: u64,
}

impl ServingReport {
    /// Total accesses applied across all sessions' merge loops.
    pub fn total_accesses(&self) -> usize {
        self.sessions.iter().map(|s| s.report.accesses_made).sum()
    }

    /// Sum of per-session call counts (the traffic the sessions *asked*
    /// for; compare with `wire_calls` for what actually hit the sources).
    pub fn session_calls(&self) -> usize {
        self.sessions.iter().map(|s| s.stats.calls).sum()
    }

    /// The `p`-quantile (0.0 ≤ p ≤ 1.0) of per-session virtual latency, in
    /// microseconds (0 with no sessions). True nearest-rank: the smallest
    /// latency at sorted rank `⌈p·n⌉` (1-based), so `p = 0.5` over an even
    /// count picks the lower middle element rather than the
    /// `round((n-1)·p)` interpolation this method used to apply, and
    /// `p = 0.0` / `p = 1.0` are exactly the min / max.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        let mut lat: Vec<u64> = self
            .sessions
            .iter()
            .map(|s| s.stats.latency_micros)
            .collect();
        if lat.is_empty() {
            return 0;
        }
        lat.sort_unstable();
        let n = lat.len();
        let rank = ((p.clamp(0.0, 1.0) * n as f64).ceil() as usize).max(1);
        lat[rank.min(n) - 1]
    }
}

/// The multi-tenant front end: admits query sessions over one shared
/// [`AsyncFederation`], deduplicating in-flight accesses and sharing
/// relevance verdicts across them (see the module docs). The registry is
/// long-lived: its verdict cache persists across [`QuerySessionRegistry::serve`]
/// calls, so a session started after another ended still reuses its verdicts.
#[derive(Debug)]
pub struct QuerySessionRegistry<'a> {
    federation: &'a AsyncFederation,
    options: ServingOptions,
    verdicts: SharedVerdictCache,
}

impl<'a> QuerySessionRegistry<'a> {
    /// A registry over `federation` with default options.
    pub fn new(federation: &'a AsyncFederation) -> Self {
        Self::with_options(federation, ServingOptions::default())
    }

    /// A registry over `federation` with explicit options.
    pub fn with_options(federation: &'a AsyncFederation, options: ServingOptions) -> Self {
        Self::with_verdicts(federation, options, SharedVerdictCache::new())
    }

    /// A registry over `federation` whose cross-session verdict cache starts
    /// from `verdicts` instead of empty — the warm-start path for a cache
    /// restored by [`crate::RunJournal::replay`], so a fresh process serves
    /// its first session with the previous process's verdicts already hot.
    pub fn with_verdicts(
        federation: &'a AsyncFederation,
        options: ServingOptions,
        verdicts: SharedVerdictCache,
    ) -> Self {
        Self {
            federation,
            options,
            verdicts,
        }
    }

    /// The federation the sessions run against.
    pub fn federation(&self) -> &'a AsyncFederation {
        self.federation
    }

    /// The cross-session verdict cache (persists across `serve` calls).
    pub fn verdict_cache(&self) -> &SharedVerdictCache {
        &self.verdicts
    }

    /// Runs one session per request concurrently on the virtual clock, all
    /// starting from `initial`, and reports per-session outcomes plus the
    /// aggregate backend traffic. Sessions are admitted in request order
    /// (FIFO) up to `max_sessions` at a time; each session's merge loop
    /// yields between batches, so admitted sessions interleave round-robin.
    pub fn serve(&self, requests: &[RunRequest], initial: &Configuration) -> ServingReport {
        let stats_before = self.federation.stats();
        let per_source_before = self.federation.per_source_stats();
        let chaos_before = self.federation.chaos().map(|c| c.stats());
        let clock = self.federation.clock().clone();
        let start = clock.now_micros();
        let methods = self.federation.methods();
        let session_gate = Semaphore::new(self.options.max_sessions);
        let access_gate = Semaphore::new(self.options.max_in_flight_accesses);
        let dedup: Option<Rc<RefCell<DedupTable>>> = self
            .options
            .dedup
            .then(|| Rc::new(RefCell::new(DedupTable::default())));

        let exec = Executor::new(clock.clone());
        let mut handles = Vec::with_capacity(requests.len());
        for (session, request) in requests.iter().enumerate() {
            let shared = self
                .options
                .share_verdicts
                .then(|| (verdict_class(request, initial), self.verdicts.clone()));
            let session_gate = session_gate.clone();
            let access_gate = access_gate.clone();
            let dedup = dedup.clone();
            let clock = clock.clone();
            let federation = self.federation;
            handles.push(exec.spawn(async move {
                let _admission = session_gate.acquire().await;
                let admitted = clock.now_micros();
                let mut stats = SessionStats::default();
                let mut merge = MergeLoop::new(
                    &request.query,
                    request.strategy,
                    &request.options,
                    methods,
                    initial,
                    shared,
                );
                while let MergeStep::Fetch(batch) = merge.step() {
                    let responses =
                        fetch_deduped(federation, &access_gate, dedup.as_ref(), &batch, &mut stats)
                            .await;
                    merge.supply(batch, responses);
                    // Round-robin fairness point: let every other
                    // admitted session progress one batch.
                    yield_now().await;
                }
                stats.latency_micros = clock.now_micros() - admitted;
                (session, merge.into_report(), stats)
            }));
        }
        let stuck = exec.run();
        assert_eq!(stuck, 0, "serving sessions blocked on a non-timer");

        let sessions: Vec<SessionReport> = handles
            .into_iter()
            .map(|h| h.take().expect("session ran to completion"))
            .map(|(session, mut report, stats)| {
                report.source_stats = SourceStats {
                    calls: stats.calls - stats.failures,
                    retries: 0,
                    failures: stats.failures,
                    tuples_returned: stats.tuples_returned,
                };
                SessionReport {
                    session,
                    report,
                    stats,
                }
            })
            .collect();
        let wire_calls: usize = sessions.iter().map(|s| s.stats.led_calls).sum();
        let joined_calls: usize = sessions.iter().map(|s| s.stats.joined_calls).sum();
        if let Some(table) = &dedup {
            let table = table.borrow();
            debug_assert_eq!(table.wire_calls, wire_calls);
            debug_assert_eq!(table.joined_calls, joined_calls);
            debug_assert!(table.in_flight.is_empty(), "in-flight table drained");
        }
        let per_source = self
            .federation
            .per_source_stats()
            .into_iter()
            .zip(per_source_before)
            .map(|((name, after), (_, before))| (name, after.since(&before)))
            .collect();
        let chaos = match (self.federation.chaos(), chaos_before) {
            (Some(controller), Some(before)) => controller.stats().since(&before),
            _ => ChaosStats::default(),
        };
        ServingReport {
            sessions,
            aggregate: self.federation.stats().since(&stats_before),
            per_source,
            chaos,
            wire_calls,
            joined_calls,
            makespan_micros: clock.now_micros() - start,
        }
    }
}

/// The serving executor: a [`RunRequest`] run as a single session on a
/// [`QuerySessionRegistry`] (multi-session serving goes through
/// [`QuerySessionRegistry::serve`] directly — the [`accrel_engine::Executor`]
/// trait is one-request-shaped). The registry, and with it the shared
/// verdict cache, persists across `execute` calls.
#[derive(Debug)]
pub struct Serving<'a> {
    registry: QuerySessionRegistry<'a>,
}

impl<'a> Serving<'a> {
    /// A serving executor over `federation` with default options.
    pub fn new(federation: &'a AsyncFederation) -> Self {
        Self {
            registry: QuerySessionRegistry::new(federation),
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &QuerySessionRegistry<'a> {
        &self.registry
    }
}

impl accrel_engine::Executor for Serving<'_> {
    fn name(&self) -> &'static str {
        "serving"
    }

    fn execute(&self, request: &RunRequest, initial: &Configuration) -> RunReport {
        let mut serve = self.registry.serve(std::slice::from_ref(request), initial);
        let mut report = serve.sessions.remove(0).report;
        // A single-session serve's chaos traffic is the session's.
        report.chaos = serve.chaos;
        report
    }

    fn reset_stats(&self) {
        self.registry.federation.reset_stats();
    }
}

/// The verdict class of a request: sessions share verdicts only when their
/// initial configuration, query, strategy and options all agree (a coarser
/// key would let a deep-budget verdict leak into a shallow-budget run).
///
/// Every ingredient must render deterministically **across processes** — a
/// journal replay (see the `journal` module) rebuilds the cache in a fresh
/// process and only hits when it derives the same class. The query is
/// therefore hashed through its `Display` form plus an id-ordered walk of
/// its schema, never through `Debug` (whose embedded `HashMap`s iterate in
/// a per-process random order).
fn verdict_class(request: &RunRequest, initial: &Configuration) -> u64 {
    let mut h = DefaultHasher::new();
    initial.fingerprint().hash(&mut h);
    request.query.to_string().hash(&mut h);
    for (rel, relation) in request.query.schema().relations_with_ids() {
        rel.0.hash(&mut h);
        format!("{relation:?}").hash(&mut h);
    }
    format!("{:?}", request.strategy).hash(&mut h);
    format!("{:?}", request.options).hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Cross-session access deduplication
// ---------------------------------------------------------------------------

/// One wire call being shared: the leader fills `result` and wakes the
/// joiners; `final_share` is the participant count at completion (what each
/// participant's fractional attribution divides by).
#[derive(Debug)]
struct InFlightCall {
    access: Access,
    result: Option<Result<Response, SourceError>>,
    participants: usize,
    final_share: usize,
    wakers: Vec<Waker>,
}

impl InFlightCall {
    fn new(access: Access) -> Self {
        Self {
            access,
            result: None,
            participants: 1,
            final_share: 1,
            wakers: Vec::new(),
        }
    }
}

/// The in-flight table: `Access::stable_hash` → shared call. Single-threaded
/// (the mini-executor never crosses threads), hence `Rc<RefCell<..>>`.
#[derive(Debug, Default)]
struct DedupTable {
    in_flight: HashMap<u64, Rc<RefCell<InFlightCall>>>,
    wire_calls: usize,
    joined_calls: usize,
}

/// Awaits the leader's result on a shared in-flight call.
struct WaitShared {
    entry: Rc<RefCell<InFlightCall>>,
}

impl Future for WaitShared {
    type Output = Result<Response, SourceError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut call = self.entry.borrow_mut();
        if let Some(result) = &call.result {
            return Poll::Ready(result.clone());
        }
        if !call.wakers.iter().any(|w| w.will_wake(cx.waker())) {
            call.wakers.push(cx.waker().clone());
        }
        Poll::Pending
    }
}

/// How one call of a batch was served.
struct CallAttribution {
    led: bool,
    /// Number of sessions that shared the wire call (1 when unshared).
    participants: usize,
}

/// Serves one access: joins an identical in-flight wire call if the dedup
/// table has one, otherwise leads a new wire call (capped by `gate`) and
/// publishes its response to late joiners.
async fn shared_call(
    federation: &AsyncFederation,
    gate: &Semaphore,
    dedup: Option<&Rc<RefCell<DedupTable>>>,
    access: Access,
) -> (Result<Response, SourceError>, CallAttribution) {
    let Some(table) = dedup else {
        let result = {
            let _permit = gate.acquire().await;
            federation.call(access).await
        };
        return (
            result,
            CallAttribution {
                led: true,
                participants: 1,
            },
        );
    };

    enum Plan {
        Join(Rc<RefCell<InFlightCall>>),
        Lead {
            registered: bool,
            entry: Rc<RefCell<InFlightCall>>,
        },
    }

    let key = access.stable_hash();
    // Decide the role synchronously (no await points), so the table state
    // observed here cannot change under us.
    let plan = {
        let mut t = table.borrow_mut();
        match t.in_flight.entry(key) {
            Entry::Occupied(slot) => {
                let entry = Rc::clone(slot.get());
                if entry.borrow().access == access {
                    entry.borrow_mut().participants += 1;
                    t.joined_calls += 1;
                    Plan::Join(entry)
                } else {
                    // A stable-hash collision between *different* accesses:
                    // lead an unregistered call rather than share a wrong
                    // response.
                    t.wire_calls += 1;
                    Plan::Lead {
                        registered: false,
                        entry: Rc::new(RefCell::new(InFlightCall::new(access.clone()))),
                    }
                }
            }
            Entry::Vacant(slot) => {
                let entry = Rc::new(RefCell::new(InFlightCall::new(access.clone())));
                slot.insert(Rc::clone(&entry));
                t.wire_calls += 1;
                Plan::Lead {
                    registered: true,
                    entry,
                }
            }
        }
    };

    match plan {
        Plan::Join(entry) => {
            let result = WaitShared {
                entry: Rc::clone(&entry),
            }
            .await;
            let participants = entry.borrow().final_share;
            (
                result,
                CallAttribution {
                    led: false,
                    participants,
                },
            )
        }
        Plan::Lead { registered, entry } => {
            let result = {
                let _permit = gate.acquire().await;
                federation.call(access).await
            };
            let participants = {
                let mut call = entry.borrow_mut();
                call.final_share = call.participants;
                call.result = Some(result.clone());
                for waker in call.wakers.drain(..) {
                    waker.wake();
                }
                call.final_share
            };
            if registered {
                // Remove our entry — but only ours: a collision bypass may
                // have replaced nothing, and a future identical access must
                // lead a fresh call now that this response is consumed.
                let mut t = table.borrow_mut();
                if let Entry::Occupied(slot) = t.in_flight.entry(key) {
                    if Rc::ptr_eq(slot.get(), &entry) {
                        slot.remove();
                    }
                }
            }
            (
                result,
                CallAttribution {
                    led: true,
                    participants,
                },
            )
        }
    }
}

/// Fetches a session's predicted batch through the dedup table, all calls
/// of the batch concurrently in flight, and folds the traffic into the
/// session's stats. Responses are aligned with the batch slice.
async fn fetch_deduped(
    federation: &AsyncFederation,
    gate: &Semaphore,
    dedup: Option<&Rc<RefCell<DedupTable>>>,
    batch: &[Access],
    stats: &mut SessionStats,
) -> Vec<Result<Response, SourceError>> {
    type CallFuture<'f> =
        Pin<Box<dyn Future<Output = (Result<Response, SourceError>, CallAttribution)> + 'f>>;
    let calls: Vec<CallFuture<'_>> = batch
        .iter()
        .map(|access| {
            Box::pin(shared_call(federation, gate, dedup, access.clone())) as CallFuture<'_>
        })
        .collect();
    let outcomes = JoinAll::new(calls).await;
    let mut responses = Vec::with_capacity(outcomes.len());
    for (result, attribution) in outcomes {
        stats.calls += 1;
        if attribution.led {
            stats.led_calls += 1;
        } else {
            stats.joined_calls += 1;
        }
        stats.fractional_calls += 1.0 / attribution.participants as f64;
        match &result {
            Ok(response) => stats.tuples_returned += response.len(),
            Err(_) => stats.failures += 1,
        }
        responses.push(result);
    }
    responses
}

/// Drives a vector of futures to completion concurrently, preserving input
/// order in the output (a dependency-free `join_all`; the futures are boxed
/// by the caller, which makes them `Unpin`).
struct JoinAll<F: Future + Unpin> {
    slots: Vec<Option<F>>,
    outputs: Vec<Option<F::Output>>,
}

// No self-references: the struct is a plain vector of `Unpin` futures and
// already-produced outputs, so it is safely `Unpin` regardless of whether
// the *output* type is.
impl<F: Future + Unpin> Unpin for JoinAll<F> {}

impl<F: Future + Unpin> JoinAll<F> {
    fn new(futures: Vec<F>) -> Self {
        let outputs = futures.iter().map(|_| None).collect();
        Self {
            slots: futures.into_iter().map(Some).collect(),
            outputs,
        }
    }
}

impl<F: Future + Unpin> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut done = true;
        for (slot, out) in this.slots.iter_mut().zip(this.outputs.iter_mut()) {
            if let Some(future) = slot {
                match Pin::new(future).poll(cx) {
                    Poll::Ready(value) => {
                        *out = Some(value);
                        *slot = None;
                    }
                    Poll::Pending => done = false,
                }
            }
        }
        if done {
            Poll::Ready(
                this.outputs
                    .iter_mut()
                    .map(|o| o.take().expect("all futures completed"))
                    .collect(),
            )
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_source::BlockingSource;
    use crate::scheduler::BatchScheduler;
    use crate::source::{LatencyModel, PolicySource};
    use accrel_engine::scenarios::{bank_scenario, Scenario};
    use accrel_engine::{DeepWebSource, ResponsePolicy, RunOptions, Strategy};

    /// The bank scenario behind an async federation whose (deterministic)
    /// source answers after a 100µs virtual round trip — long enough for
    /// admitted sessions to overlap in flight.
    fn bank_async_federation() -> (AsyncFederation, Scenario) {
        let scenario = bank_scenario();
        let methods = scenario.methods.clone();
        let builder = AsyncFederation::builder(methods.clone());
        let clock = builder.clock().clone();
        let source = BlockingSource::new(PolicySource::new(
            "bank",
            DeepWebSource::new(
                scenario.instance.clone(),
                methods.clone(),
                ResponsePolicy::Exact,
            ),
        ))
        .with_virtual_latency(LatencyModel::recorded(100), clock);
        let names: Vec<&str> = methods.iter().map(|(_, m)| m.name()).collect();
        let federation = builder.source(source, &names).unwrap().build().unwrap();
        (federation, scenario)
    }

    fn identical_requests(scenario: &Scenario, n: usize) -> Vec<RunRequest> {
        (0..n)
            .map(|_| RunRequest::new(scenario.query.clone()).with_strategy(Strategy::Exhaustive))
            .collect()
    }

    #[test]
    fn identical_sessions_share_wire_calls_and_match_sequential() {
        let (federation, scenario) = bank_async_federation();
        let registry = QuerySessionRegistry::new(&federation);
        let n = 4;
        let report = registry.serve(
            &identical_requests(&scenario, n),
            &scenario.initial_configuration,
        );
        assert_eq!(report.sessions.len(), n);

        // Every session reports exactly what one sequential run reports.
        let sequential_source = DeepWebSource::new(
            scenario.instance.clone(),
            scenario.methods.clone(),
            ResponsePolicy::Exact,
        );
        let sequential = accrel_engine::FederatedEngine::new(
            &sequential_source,
            scenario.query.clone(),
            Strategy::Exhaustive,
        )
        .run(&scenario.initial_configuration);
        for s in &report.sessions {
            assert!(s.report.certain);
            assert_eq!(s.report.access_sequence, sequential.access_sequence);
            assert_eq!(s.report.answers, sequential.answers);
            assert!(s
                .report
                .final_configuration
                .same_facts(&sequential.final_configuration));
        }

        // Deduplication strictly reduced backend traffic: the four sessions
        // asked for 4× the accesses but the sources saw far fewer calls.
        assert!(report.joined_calls > 0);
        assert!(report.wire_calls < report.session_calls());
        assert_eq!(report.aggregate.source.calls, report.wire_calls);
        // Fractional attribution sums back to the wire-call count.
        let fractional: f64 = report
            .sessions
            .iter()
            .map(|s| s.stats.fractional_calls)
            .sum();
        assert!((fractional - report.wire_calls as f64).abs() < 1e-6);
        // Per-session latency percentiles are ordered and within makespan.
        assert!(report.latency_percentile(0.5) <= report.latency_percentile(0.95));
        assert!(report.latency_percentile(0.95) <= report.makespan_micros);
    }

    /// Satellite regression: `latency_percentile` is true nearest-rank. The
    /// old `round((n-1)·p)` index made p=0.5 on small even counts jump to
    /// the *upper* middle and let intermediate quantiles drift off-element;
    /// nearest-rank pins p=0.0 to the min, p=1.0 to the max, and p=0.5 on
    /// three sessions to exactly the middle latency.
    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let (federation, scenario) = bank_async_federation();
        let registry = QuerySessionRegistry::new(&federation);
        let report = registry.serve(
            &identical_requests(&scenario, 3),
            &scenario.initial_configuration,
        );
        let mut lat: Vec<u64> = report
            .sessions
            .iter()
            .map(|s| s.stats.latency_micros)
            .collect();
        assert_eq!(lat.len(), 3);
        lat.sort_unstable();
        assert_eq!(report.latency_percentile(0.0), lat[0]);
        assert_eq!(report.latency_percentile(0.5), lat[1]);
        assert_eq!(report.latency_percentile(1.0), lat[2]);
        // Out-of-range quantiles clamp to the extremes.
        assert_eq!(report.latency_percentile(-1.0), lat[0]);
        assert_eq!(report.latency_percentile(2.0), lat[2]);
    }

    #[test]
    fn disabling_dedup_dials_every_call() {
        let (federation, scenario) = bank_async_federation();
        let registry = QuerySessionRegistry::with_options(
            &federation,
            ServingOptions {
                dedup: false,
                ..ServingOptions::default()
            },
        );
        let report = registry.serve(
            &identical_requests(&scenario, 3),
            &scenario.initial_configuration,
        );
        assert_eq!(report.joined_calls, 0);
        assert_eq!(report.wire_calls, report.session_calls());
        assert_eq!(report.aggregate.source.calls, report.wire_calls);
    }

    #[test]
    fn verdict_cache_persists_across_serve_calls() {
        let (federation, scenario) = bank_async_federation();
        let registry = QuerySessionRegistry::new(&federation);
        let request = vec![RunRequest::new(scenario.query.clone())];
        let first = registry.serve(&request, &scenario.initial_configuration);
        assert_eq!(first.sessions[0].report.relevance_shared_hits, 0);
        assert!(!registry.verdict_cache().is_empty());
        // A later session over the same class reuses the verdicts.
        let second = registry.serve(&request, &scenario.initial_configuration);
        assert!(second.sessions[0].report.relevance_shared_hits > 0);
        assert_eq!(
            second.sessions[0].report.relevance_verdicts,
            first.sessions[0].report.relevance_verdicts
        );
    }

    #[test]
    fn admission_cap_still_completes_every_session() {
        let (federation, scenario) = bank_async_federation();
        let registry = QuerySessionRegistry::with_options(
            &federation,
            ServingOptions {
                max_sessions: 2,
                max_in_flight_accesses: 1,
                ..ServingOptions::default()
            },
        );
        let report = registry.serve(
            &identical_requests(&scenario, 5),
            &scenario.initial_configuration,
        );
        assert_eq!(report.sessions.len(), 5);
        for s in &report.sessions {
            assert!(s.report.certain);
        }
        // Later arrivals waited for a session slot, so their latency spread
        // shows the queueing.
        assert!(report.makespan_micros >= report.latency_percentile(1.0));
    }

    #[test]
    fn serving_executor_answers_like_the_threaded_one() {
        let (federation, scenario) = bank_async_federation();
        let serving = Serving::new(&federation);
        use accrel_engine::Executor as _;
        assert_eq!(serving.name(), "serving");
        let request = RunRequest::new(scenario.query.clone())
            .with_strategy(Strategy::Hybrid)
            .with_options(RunOptions {
                budget: accrel_core::SearchBudget::shallow(),
                ..RunOptions::default()
            });
        let report = serving.execute(&request, &scenario.initial_configuration);

        let threaded_federation = crate::Federation::single(PolicySource::new(
            "bank",
            DeepWebSource::new(
                scenario.instance.clone(),
                scenario.methods.clone(),
                ResponsePolicy::Exact,
            ),
        ));
        let threaded = BatchScheduler::new(
            &threaded_federation,
            scenario.query.clone(),
            Strategy::Hybrid,
        )
        .with_options(request.options.clone())
        .run(&scenario.initial_configuration);
        assert_eq!(report.access_sequence, threaded.access_sequence);
        assert_eq!(report.certain, threaded.certain);
        assert_eq!(report.relevance_verdicts, threaded.relevance_verdicts);
    }
}
