//! A hand-rolled, dependency-free async runtime: a single-threaded
//! mini-executor with a deterministic **virtual clock**.
//!
//! The federation's latency models describe *simulated* time; realising them
//! with `thread::sleep` (as the threaded scheduler's throughput harness
//! does) makes every measurement wall-clock-bound and every test slow. The
//! async runtime replaces real sleeps with a [`VirtualClock`]: `sleep`
//! futures register `(deadline, registration-sequence)` entries in a timer
//! wheel, and whenever the executor runs out of ready tasks it advances the
//! clock to the earliest pending deadline and wakes the timers that came
//! due — in deadline order, ties broken by registration order, so runs are
//! bit-for-bit reproducible and take microseconds of wall time regardless
//! of the simulated latencies.
//!
//! The pieces, all built on stable `std` only (no crates.io dependencies):
//!
//! * [`VirtualClock`] — shared virtual time plus the timer wheel;
//!   [`VirtualClock::sleep`] is the awaitable primitive the async sources
//!   build their latency/retry/paging state machines from. Dropping a
//!   `Sleep` future deregisters its timer, so cancelled tasks leak nothing.
//! * [`Executor`] — a single-threaded task queue. Tasks are plain boxed
//!   futures (not required to be `Send`; they never leave the thread);
//!   wakers are `Arc`-based via the std [`std::task::Wake`] trait, and are
//!   safe to invoke after the executor itself is gone (the wake becomes a
//!   no-op on a queue nobody drains). The ready queue is strict FIFO and a
//!   task re-waking itself goes to the back, so many ready tasks make
//!   round-robin progress (fairness is pinned by a unit test).
//! * [`Semaphore`] — a FIFO async semaphore; the async batch scheduler uses
//!   it to cap the number of in-flight source calls per batch, which is the
//!   knob the F2 throughput sweep turns.
//!
//! The executor is deliberately *not* `'static`-only: [`Executor::spawn`]
//! accepts futures borrowing from the caller's stack (the async scheduler
//! spawns futures borrowing the federation), which is what lets the whole
//! runtime live inside one synchronous `run` call.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// A boxed, single-threaded task future (erased to `()`; results travel
/// through [`JoinHandle`] cells).
type TaskFuture<'env> = Pin<Box<dyn Future<Output = ()> + 'env>>;

// ---------------------------------------------------------------------------
// Virtual clock
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ClockInner {
    /// Virtual time, in microseconds since the clock's creation.
    now_micros: u64,
    /// Registration sequence for deterministic same-deadline ordering.
    next_timer_id: u64,
    /// Pending timers: `(deadline, registration id) → waker`.
    timers: BTreeMap<(u64, u64), Waker>,
}

/// A shared, deterministic virtual clock with a timer wheel.
///
/// Cloning is cheap and shares the underlying state: the async federation
/// hands clones to its sources, and the executor driving their futures
/// advances the same clock. Time only moves through
/// [`VirtualClock::advance_to_next_timer`] (called by [`Executor::run`]
/// when no task is ready), never through wall-clock sleeps.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    inner: Arc<Mutex<ClockInner>>,
}

impl VirtualClock {
    /// A fresh clock at virtual time zero with no pending timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time, in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.lock().now_micros
    }

    /// Number of registered (not yet fired) timers.
    pub fn timer_count(&self) -> usize {
        self.lock().timers.len()
    }

    /// Advances virtual time by `micros` *without* waking any timer — the
    /// synchronous chaos pacing hook (`crate::chaos`): threaded federations
    /// have no executor draining this clock, so the chaos controller ticks
    /// it forward a fixed pace per wire attempt to give churn scripts a
    /// timeline. Panics if a timer is pending (an async run owns the clock;
    /// skipping its deadlines would deadlock the executor).
    pub fn advance_micros(&self, micros: u64) {
        let mut inner = self.lock();
        assert!(
            inner.timers.is_empty(),
            "advance_micros on a clock with pending timers (owned by an executor)"
        );
        inner.now_micros = inner.now_micros.saturating_add(micros);
    }

    /// A future that completes once virtual time has advanced `micros`
    /// microseconds past the moment of this call. A zero-length sleep is
    /// ready on first poll and never registers a timer.
    pub fn sleep(&self, micros: u64) -> Sleep {
        let mut inner = self.lock();
        let deadline = inner.now_micros.saturating_add(micros);
        let id = inner.next_timer_id;
        inner.next_timer_id += 1;
        Sleep {
            clock: self.clone(),
            key: (deadline, id),
        }
    }

    /// Advances virtual time to the earliest pending deadline and wakes
    /// every timer due at the new time (in `(deadline, registration)`
    /// order). Returns `false` when no timer is pending — time cannot
    /// advance on its own.
    pub fn advance_to_next_timer(&self) -> bool {
        let due: Vec<Waker> = {
            let mut inner = self.lock();
            let Some(&(deadline, _)) = inner.timers.keys().next() else {
                return false;
            };
            inner.now_micros = inner.now_micros.max(deadline);
            let now = inner.now_micros;
            let mut due = Vec::new();
            while let Some(entry) = inner.timers.first_entry() {
                if entry.key().0 > now {
                    break;
                }
                due.push(entry.remove());
            }
            due
        };
        // Wake outside the lock: a waker may (transitively) touch the clock.
        for waker in due {
            waker.wake();
        }
        true
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ClockInner> {
        self.inner.lock().expect("virtual clock poisoned")
    }
}

/// The future returned by [`VirtualClock::sleep`]. Dropping it before
/// completion deregisters the timer, so cancellation leaks nothing.
#[derive(Debug)]
pub struct Sleep {
    clock: VirtualClock,
    key: (u64, u64),
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.clock.lock();
        if inner.now_micros >= self.key.0 {
            inner.timers.remove(&self.key);
            Poll::Ready(())
        } else {
            inner.timers.insert(self.key, cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        self.clock.lock().timers.remove(&self.key);
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ReadyQueue {
    /// Task indices ready to be polled, FIFO.
    queue: VecDeque<usize>,
    /// Deduplication flags: `queued[i]` ⇔ task `i` is already in `queue`.
    queued: Vec<bool>,
}

/// The waker-reachable half of the executor. It outlives the [`Executor`]
/// through the `Arc`s inside wakers, which is what makes late wakes (after
/// the executor and its tasks are gone) harmless no-ops.
#[derive(Debug, Default)]
struct ExecShared {
    ready: Mutex<ReadyQueue>,
}

impl ExecShared {
    fn push(&self, index: usize) {
        let mut ready = self.ready.lock().expect("executor queue poisoned");
        if let Some(flag) = ready.queued.get_mut(index) {
            if !*flag {
                *flag = true;
                ready.queue.push_back(index);
            }
        }
    }

    fn pop(&self) -> Option<usize> {
        let mut ready = self.ready.lock().expect("executor queue poisoned");
        let index = ready.queue.pop_front()?;
        ready.queued[index] = false;
        Some(index)
    }

    fn register(&self) -> usize {
        let mut ready = self.ready.lock().expect("executor queue poisoned");
        ready.queued.push(false);
        ready.queued.len() - 1
    }
}

/// The per-task waker: waking re-enqueues the task on the shared ready
/// queue. `Send + Sync` as the `Waker` contract requires, even though the
/// tasks themselves never cross threads.
struct TaskWaker {
    index: usize,
    shared: Arc<ExecShared>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.shared.push(self.index);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.push(self.index);
    }
}

/// A single-threaded mini-executor over a [`VirtualClock`].
///
/// `'env` is the lifetime tasks may borrow from: the async batch scheduler
/// spawns futures that borrow the federation living on its caller's stack.
/// Dropping the executor drops every unfinished task (their `Sleep` timers
/// deregister themselves), so abandoning a run mid-batch leaks nothing.
pub struct Executor<'env> {
    clock: VirtualClock,
    shared: Arc<ExecShared>,
    tasks: RefCell<Vec<Option<TaskFuture<'env>>>>,
}

impl std::fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("clock", &self.clock)
            .field("tasks", &self.tasks.borrow().len())
            .field("pending", &self.pending_tasks())
            .finish()
    }
}

impl<'env> Executor<'env> {
    /// An executor driving tasks against `clock`.
    pub fn new(clock: VirtualClock) -> Self {
        Self {
            clock,
            shared: Arc::new(ExecShared::default()),
            tasks: RefCell::new(Vec::new()),
        }
    }

    /// The clock this executor advances when idle.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Spawns a task and returns a handle to its eventual result. The task
    /// is queued immediately (behind every task already ready) and first
    /// polled by the next [`Executor::step`] that reaches it.
    pub fn spawn<T, F>(&self, future: F) -> JoinHandle<T>
    where
        T: 'env,
        F: Future<Output = T> + 'env,
    {
        let cell: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let out = Rc::clone(&cell);
        let index = self.shared.register();
        {
            let mut tasks = self.tasks.borrow_mut();
            debug_assert_eq!(tasks.len(), index, "task and queue slots in step");
            tasks.push(Some(Box::pin(async move {
                *out.borrow_mut() = Some(future.await);
            })));
        }
        self.shared.push(index);
        JoinHandle { cell }
    }

    /// Polls the first ready task, if any. Returns `false` when the ready
    /// queue is empty (only clock advancement can unblock progress).
    pub fn step(&self) -> bool {
        loop {
            let Some(index) = self.shared.pop() else {
                return false;
            };
            // A stale wake may point at a completed task; skip it.
            let Some(mut future) = self.tasks.borrow_mut()[index].take() else {
                continue;
            };
            let waker = Waker::from(Arc::new(TaskWaker {
                index,
                shared: Arc::clone(&self.shared),
            }));
            let mut cx = Context::from_waker(&waker);
            // The slot stays `None` during the poll, so a task spawning new
            // tasks (or waking itself) re-borrows `tasks` safely.
            if future.as_mut().poll(&mut cx).is_pending() {
                self.tasks.borrow_mut()[index] = Some(future);
            }
            return true;
        }
    }

    /// Runs until no task is ready (without advancing the clock).
    pub fn run_until_stalled(&self) {
        while self.step() {}
    }

    /// Runs tasks to completion, advancing the virtual clock whenever every
    /// remaining task is blocked on a timer. Returns the number of tasks
    /// still pending — zero on success; non-zero means the remaining tasks
    /// are blocked on something other than time (a deadlock under this
    /// single-threaded runtime), which callers should treat as a bug.
    pub fn run(&self) -> usize {
        loop {
            self.run_until_stalled();
            if self.pending_tasks() == 0 {
                return 0;
            }
            if !self.clock.advance_to_next_timer() {
                return self.pending_tasks();
            }
        }
    }

    /// Number of spawned tasks that have not completed.
    pub fn pending_tasks(&self) -> usize {
        self.tasks.borrow().iter().filter(|t| t.is_some()).count()
    }
}

/// A handle to a spawned task's result. This runtime has no blocking
/// `join`: drive the executor ([`Executor::run`]) and then
/// [`take`](JoinHandle::take) the value.
#[derive(Debug)]
pub struct JoinHandle<T> {
    cell: Rc<RefCell<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has run to completion (and its result is waiting).
    pub fn is_finished(&self) -> bool {
        self.cell.borrow().is_some()
    }

    /// Takes the task's result, if it has completed (subsequent calls
    /// return `None`).
    pub fn take(&self) -> Option<T> {
        self.cell.borrow_mut().take()
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct SemInner {
    permits: usize,
    next_waiter_id: u64,
    /// FIFO wait queue: `(waiter id, waker)`.
    waiters: VecDeque<(u64, Waker)>,
}

/// A FIFO async semaphore: `acquire().await` yields a [`Permit`] that
/// returns its permit on drop. Waiters are granted strictly in arrival
/// order (a late arrival never overtakes the queue even when a permit is
/// momentarily free), which keeps concurrency-limited schedules
/// deterministic.
#[derive(Debug, Clone)]
pub struct Semaphore {
    inner: Arc<Mutex<SemInner>>,
}

impl Semaphore {
    /// A semaphore with `permits` concurrent permits (`0` is treated as 1 —
    /// a zero-width semaphore could never be acquired).
    pub fn new(permits: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(SemInner {
                permits: permits.max(1),
                next_waiter_id: 0,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// A future resolving to a [`Permit`] once one is available.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone(),
            waiting_as: None,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SemInner> {
        self.inner.lock().expect("semaphore poisoned")
    }
}

/// The future returned by [`Semaphore::acquire`]. Dropping it mid-wait
/// leaves the queue clean (the waiter entry is removed, and the wake it
/// might have absorbed is passed on).
#[derive(Debug)]
pub struct Acquire {
    sem: Semaphore,
    /// `Some(id)` once enqueued as a waiter.
    waiting_as: Option<u64>,
}

impl Future for Acquire {
    type Output = Permit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        let sem = self.sem.clone();
        let mut inner = sem.lock();
        match self.waiting_as {
            None => {
                if inner.permits > 0 && inner.waiters.is_empty() {
                    inner.permits -= 1;
                    drop(inner);
                    return Poll::Ready(Permit {
                        sem: self.sem.clone(),
                    });
                }
                let id = inner.next_waiter_id;
                inner.next_waiter_id += 1;
                inner.waiters.push_back((id, cx.waker().clone()));
                self.waiting_as = Some(id);
                Poll::Pending
            }
            Some(id) => {
                let at_front = inner.waiters.front().map(|(w, _)| *w) == Some(id);
                if at_front && inner.permits > 0 {
                    inner.permits -= 1;
                    inner.waiters.pop_front();
                    self.waiting_as = None;
                    // The next waiter may also have a free permit (several
                    // releases can precede this poll).
                    if inner.permits > 0 {
                        if let Some((_, waker)) = inner.waiters.front() {
                            waker.wake_by_ref();
                        }
                    }
                    drop(inner);
                    return Poll::Ready(Permit {
                        sem: self.sem.clone(),
                    });
                }
                // Refresh the stored waker (the task may have moved).
                if let Some(entry) = inner.waiters.iter_mut().find(|(w, _)| *w == id) {
                    entry.1 = cx.waker().clone();
                }
                Poll::Pending
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        let Some(id) = self.waiting_as else {
            return;
        };
        let mut inner = self.sem.lock();
        inner.waiters.retain(|(w, _)| *w != id);
        // If a release woke us and we die before polling, pass the wake on.
        if inner.permits > 0 {
            if let Some((_, waker)) = inner.waiters.front() {
                waker.wake_by_ref();
            }
        }
    }
}

/// An acquired semaphore permit; dropping it releases the permit and wakes
/// the longest-waiting acquirer.
#[derive(Debug)]
pub struct Permit {
    sem: Semaphore,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut inner = self.sem.lock();
        inner.permits += 1;
        if let Some((_, waker)) = inner.waiters.front() {
            waker.wake_by_ref();
        }
    }
}

/// Yields the current task once: pending on the first poll (immediately
/// re-waking itself, which re-queues the task at the *back* of the strict
/// FIFO ready queue), ready on the second. Awaiting it between units of work
/// is therefore a round-robin fairness point: every other ready task gets a
/// poll before this one resumes. The serving layer yields between a
/// session's batches so concurrent sessions interleave on the virtual
/// clock.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// The future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// A future that stashes its waker and stays pending forever.
    struct StashWaker {
        slot: Rc<RefCell<Option<Waker>>>,
    }

    impl Future for StashWaker {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            *self.slot.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    /// Sets its flag when dropped (leak probe for cancellation tests).
    struct DropFlag {
        flag: Rc<Cell<bool>>,
    }

    impl Drop for DropFlag {
        fn drop(&mut self) {
            self.flag.set(true);
        }
    }

    #[test]
    fn timers_fire_in_deadline_then_registration_order() {
        let clock = VirtualClock::new();
        let exec = Executor::new(clock.clone());
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        for (label, micros) in [("c", 300u64), ("a", 100), ("b", 200), ("a2", 100)] {
            let clock = clock.clone();
            let order = Rc::clone(&order);
            exec.spawn(async move {
                clock.sleep(micros).await;
                order.borrow_mut().push(label);
            });
        }
        assert_eq!(exec.run(), 0);
        // Deadline order; the two 100µs timers tie and fire in registration
        // order ("a" was registered before "a2").
        assert_eq!(*order.borrow(), vec!["a", "a2", "b", "c"]);
        assert_eq!(clock.now_micros(), 300);
        assert_eq!(clock.timer_count(), 0);
    }

    #[test]
    fn sequential_sleeps_accumulate_virtual_time() {
        let clock = VirtualClock::new();
        let exec = Executor::new(clock.clone());
        let c = clock.clone();
        let handle = exec.spawn(async move {
            c.sleep(50).await;
            c.sleep(70).await;
            c.now_micros()
        });
        assert_eq!(exec.run(), 0);
        assert_eq!(handle.take(), Some(120));
    }

    #[test]
    fn waking_after_executor_drop_is_a_safe_no_op() {
        let slot: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
        let exec = Executor::new(VirtualClock::new());
        exec.spawn(StashWaker {
            slot: Rc::clone(&slot),
        });
        exec.run_until_stalled();
        let waker = slot.borrow_mut().take().expect("task was polled");
        drop(exec);
        // The task (and the executor) are gone; the waker must not panic,
        // whether by value or by reference.
        waker.wake_by_ref();
        waker.wake();
    }

    #[test]
    fn many_ready_tasks_make_round_robin_progress() {
        let exec = Executor::new(VirtualClock::new());
        let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        const TASKS: usize = 5;
        const YIELDS: usize = 3;
        for i in 0..TASKS {
            let log = Rc::clone(&log);
            exec.spawn(async move {
                for _ in 0..=YIELDS {
                    log.borrow_mut().push(i);
                    yield_now().await;
                }
            });
        }
        assert_eq!(exec.run(), 0);
        // Strict FIFO re-queueing ⇒ the poll log is 0..TASKS repeated: no
        // task gets a second poll before every other ready task got one.
        let expected: Vec<usize> = (0..=YIELDS).flat_map(|_| 0..TASKS).collect();
        assert_eq!(*log.borrow(), expected);
    }

    #[test]
    fn dropping_the_executor_cancels_tasks_and_their_timers() {
        let clock = VirtualClock::new();
        let exec = Executor::new(clock.clone());
        let flags: Vec<Rc<Cell<bool>>> = (0..3).map(|_| Rc::new(Cell::new(false))).collect();
        for flag in &flags {
            let clock = clock.clone();
            let guard = DropFlag {
                flag: Rc::clone(flag),
            };
            exec.spawn(async move {
                let _guard = guard;
                // An effectively-infinite timer chain.
                loop {
                    clock.sleep(1_000).await;
                }
            });
        }
        exec.run_until_stalled();
        assert_eq!(exec.pending_tasks(), 3);
        assert_eq!(clock.timer_count(), 3);
        drop(exec);
        // Every task future was dropped (no leaks)...
        assert!(flags.iter().all(|f| f.get()));
        // ...and their `Sleep` futures deregistered their timers.
        assert_eq!(clock.timer_count(), 0);
    }

    #[test]
    fn deadlocked_tasks_are_reported_not_spun() {
        let exec = Executor::new(VirtualClock::new());
        let slot = Rc::new(RefCell::new(None));
        exec.spawn(StashWaker {
            slot: Rc::clone(&slot),
        });
        // No timer exists, so the run cannot make progress: it must return
        // the number of stuck tasks instead of looping forever.
        assert_eq!(exec.run(), 1);
    }

    #[test]
    fn join_handle_returns_the_task_result_once() {
        let exec = Executor::new(VirtualClock::new());
        let handle = exec.spawn(async { 21 * 2 });
        assert!(!handle.is_finished());
        assert_eq!(exec.run(), 0);
        assert!(handle.is_finished());
        assert_eq!(handle.take(), Some(42));
        assert_eq!(handle.take(), None);
    }

    #[test]
    fn semaphore_grants_permits_in_fifo_order() {
        let clock = VirtualClock::new();
        let exec = Executor::new(clock.clone());
        let sem = Semaphore::new(2);
        let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let sem = sem.clone();
            let clock = clock.clone();
            let order = Rc::clone(&order);
            exec.spawn(async move {
                let _permit = sem.acquire().await;
                clock.sleep(100).await;
                order.borrow_mut().push(i);
            });
        }
        assert_eq!(exec.run(), 0);
        // Two waves of two: completion strictly in spawn order.
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
        // Wave 1 finishes at t=100, wave 2 at t=200.
        assert_eq!(clock.now_micros(), 200);
    }

    #[test]
    fn semaphore_zero_width_is_promoted_to_one() {
        let exec = Executor::new(VirtualClock::new());
        let sem = Semaphore::new(0);
        let handle = exec.spawn(async move {
            let _p = sem.acquire().await;
            7
        });
        assert_eq!(exec.run(), 0);
        assert_eq!(handle.take(), Some(7));
    }

    /// A waker that does nothing (for polling futures by hand).
    struct NoopWake;

    impl Wake for NoopWake {
        fn wake(self: Arc<Self>) {}
    }

    #[test]
    fn dropping_a_waiting_acquire_passes_the_permit_on() {
        let exec = Executor::new(VirtualClock::new());
        let sem = Semaphore::new(1);
        let waker = Waker::from(Arc::new(NoopWake));
        let mut cx = Context::from_waker(&waker);
        // Take the only permit synchronously (no waiters yet).
        let mut first = Box::pin(sem.acquire());
        let Poll::Ready(held) = first.as_mut().poll(&mut cx) else {
            panic!("free permit resolves on first poll");
        };
        // Queue a waiter, then abandon it mid-wait: it must leave the FIFO
        // queue cleanly and not swallow the permit for the waiter behind it.
        let mut abandoned = Box::pin(sem.acquire());
        assert!(abandoned.as_mut().poll(&mut cx).is_pending());
        let done = Rc::new(Cell::new(false));
        let sem2 = sem.clone();
        let done2 = Rc::clone(&done);
        exec.spawn(async move {
            let _p = sem2.acquire().await;
            done2.set(true);
        });
        exec.run_until_stalled();
        assert!(!done.get());
        drop(abandoned);
        drop(held);
        assert_eq!(exec.run(), 0);
        assert!(done.get());
    }
}
