//! Errors of the federation runtime.

use std::fmt;

use accrel_access::AccessError;

/// Why a source call did not deliver a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The access layer rejected the call (unknown method, bad binding, …).
    Access(AccessError),
    /// A (simulated) transient failure persisted through every allowed
    /// retry.
    Unavailable {
        /// The source that failed.
        source: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Access(e) => write!(f, "access error: {e}"),
            SourceError::Unavailable { source, reason } => {
                write!(f, "source `{source}` unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for SourceError {}

impl From<AccessError> for SourceError {
    fn from(e: AccessError) -> Self {
        SourceError::Access(e)
    }
}

/// Errors raised when assembling a [`crate::Federation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// A method name could not be resolved in the shared registry.
    UnknownMethod(String),
    /// A source was registered over a different schema than the federation.
    SchemaMismatch {
        /// The offending source.
        source: String,
    },
    /// A method was routed to two different sources.
    DuplicateRoute {
        /// The method routed twice.
        method: String,
    },
    /// After building, some methods had no source to serve them.
    UnroutedMethods(
        /// The names of the unrouted methods.
        Vec<String>,
    ),
    /// A chaos churn script named a source not registered in the federation.
    UnknownSource(
        /// The unknown source name.
        String,
    ),
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::UnknownMethod(name) => write!(f, "unknown access method `{name}`"),
            FederationError::SchemaMismatch { source } => {
                write!(f, "source `{source}` ranges over a different schema")
            }
            FederationError::DuplicateRoute { method } => {
                write!(f, "method `{method}` routed to more than one source")
            }
            FederationError::UnroutedMethods(names) => {
                write!(f, "methods with no serving source: {}", names.join(", "))
            }
            FederationError::UnknownSource(name) => {
                write!(f, "churn script names unregistered source `{name}`")
            }
        }
    }
}

impl std::error::Error for FederationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use accrel_access::AccessMethodId;

    #[test]
    fn display_messages() {
        let e: SourceError = AccessError::UnknownMethod(AccessMethodId(3)).into();
        assert!(e.to_string().contains("#3"));
        assert!(SourceError::Unavailable {
            source: "s".into(),
            reason: "flaked".into()
        }
        .to_string()
        .contains("flaked"));
        assert!(FederationError::UnknownMethod("m".into())
            .to_string()
            .contains("`m`"));
        assert!(FederationError::SchemaMismatch { source: "s".into() }
            .to_string()
            .contains("schema"));
        assert!(FederationError::DuplicateRoute { method: "m".into() }
            .to_string()
            .contains("more than one"));
        assert!(
            FederationError::UnroutedMethods(vec!["a".into(), "b".into()])
                .to_string()
                .contains("a, b")
        );
    }
}
