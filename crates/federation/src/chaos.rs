//! Chaos: deterministic source churn, circuit breakers, replica failover.
//!
//! A production federation must keep producing *sequential-equivalent*
//! answers while sources appear, die, flap and degrade mid-run. This module
//! makes that failure behaviour a first-class, deterministic input:
//!
//! * [`ChurnScript`] — a script of timed events on a [`VirtualClock`]
//!   (kill / revive a source, swap its [`LatencyModel`] / [`FlakyModel`])
//!   built with [`ChurnScript::builder`]. Events fire when virtual time
//!   passes their deadline, so the same script on the same clock replays
//!   identically.
//! * [`CircuitBreaker`] — a per-source Closed→Open→HalfOpen state machine
//!   with virtual-clock cooldowns, tripped by consecutive flaky-retry
//!   exhaustion. An open breaker absorbs calls (`short-circuits`) instead of
//!   letting them fail again; after the cooldown one probe call is let
//!   through (HalfOpen) and its outcome closes or re-opens the circuit.
//! * [`ChaosController`] — the pieces assembled behind a
//!   federation: it applies due churn events, gates every replica attempt
//!   (dead? open-circuit?), feeds call outcomes to the breakers and counts
//!   everything into [`ChaosStats`].
//!
//! **Equivalence.** Failover changes *who* answers, never *what* is
//! answered: replicas hold the same hidden instance under the same
//! [`ResponsePolicy`](accrel_engine::ResponsePolicy) (same `SoundSample`
//! seed), and every policy's selection is a pure function of the access
//! (`Access::stable_hash`), so any replica's response is byte-for-byte the
//! primary's. Churn and breakers therefore only move cost and routing
//! around; the merge loop's sequential-equivalence guarantee survives as
//! long as *some* live replica answers each access. Churn-event *timing*
//! may differ between executors (threaded wall-clock interleavings vs the
//! async virtual clock), which shifts stats, never content.
//!
//! The synchronous [`Federation`](crate::Federation) has no executor
//! draining a clock, so [`ChaosOptions::pace_micros_per_call`] gives its
//! controller a self-advancing timeline: each wire call ticks the
//! controller's private clock forward by the pace, and events fire as the
//! call counter sweeps past their deadlines. Async federations share the
//! executor's clock and leave the pace at 0.

use std::collections::VecDeque;
use std::sync::Mutex;

use accrel_engine::ChaosStats;

use crate::error::FederationError;
use crate::executor::VirtualClock;
use crate::source::{FlakyModel, LatencyModel};

/// The observable state of a [`CircuitBreaker`] at a given virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; consecutive failures are counted.
    Closed,
    /// The breaker absorbs calls (short-circuit) until the cooldown ends.
    Open,
    /// The cooldown has elapsed: one probe call is allowed through; success
    /// closes the circuit, failure re-opens it (and restarts the cooldown).
    HalfOpen,
}

/// Tuning of a per-source [`CircuitBreaker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerOptions {
    /// Consecutive ultimate failures (retry exhaustions) that trip the
    /// breaker. Minimum 1.
    pub trip_threshold: usize,
    /// Virtual microseconds an open breaker waits before allowing a
    /// HalfOpen probe.
    pub cooldown_micros: u64,
}

impl Default for BreakerOptions {
    fn default() -> Self {
        Self {
            trip_threshold: 3,
            cooldown_micros: 1_000,
        }
    }
}

/// A Closed→Open→HalfOpen circuit breaker over explicit timestamps.
///
/// The machine is pure state + arithmetic: callers pass `now` (virtual
/// microseconds) into every transition, so the breaker itself holds no
/// clock and is trivially testable in isolation. `Open` vs `HalfOpen` is
/// *derived* — an open breaker whose cooldown has elapsed reports
/// `HalfOpen` without any event having to fire.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    options: BreakerOptions,
    consecutive_failures: usize,
    /// `Some(t)` while tripped: the instant of the (latest) trip.
    opened_at: Option<u64>,
    /// `Some(t)` while a HalfOpen probe claimed at `t` is still in flight.
    /// Because `state()` is derived from timestamps, N concurrent callers at
    /// the same virtual instant would all observe `HalfOpen` and all fly;
    /// the claim slot serializes them — exactly one probe per cooldown.
    probe_claimed_at: Option<u64>,
    trips: usize,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(options: BreakerOptions) -> Self {
        Self {
            options: BreakerOptions {
                trip_threshold: options.trip_threshold.max(1),
                ..options
            },
            consecutive_failures: 0,
            opened_at: None,
            probe_claimed_at: None,
            trips: 0,
        }
    }

    /// The state at virtual time `now`.
    pub fn state(&self, now: u64) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(at) if now >= at.saturating_add(self.options.cooldown_micros) => {
                BreakerState::HalfOpen
            }
            Some(_) => BreakerState::Open,
        }
    }

    /// Whether a call may be attempted at `now` (`Closed` or a `HalfOpen`
    /// probe). Read-only: does not claim the probe slot, so concurrent
    /// callers may all see `true` — the serving path goes through
    /// [`CircuitBreaker::try_claim_probe`] instead.
    pub fn allows(&self, now: u64) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// Attempts to claim permission for a call at `now`. `Closed` always
    /// allows; `Open` never does; `HalfOpen` hands out exactly **one** probe
    /// slot per cooldown — the first caller claims it, every concurrent (or
    /// later) caller is refused until the probe's outcome is recorded or the
    /// claim itself ages out after another cooldown (probe lost in flight).
    pub fn try_claim_probe(&mut self, now: u64) -> bool {
        match self.state(now) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                let claim_free = self.probe_claimed_at.is_none_or(|claimed| {
                    now >= claimed.saturating_add(self.options.cooldown_micros)
                });
                if claim_free {
                    self.probe_claimed_at = Some(now);
                }
                claim_free
            }
        }
    }

    /// Records a successful call at `now`: resets the failure streak and —
    /// if this was a HalfOpen probe — closes the circuit.
    pub fn record_success(&mut self, _now: u64) {
        self.consecutive_failures = 0;
        self.opened_at = None;
        self.probe_claimed_at = None;
    }

    /// Records an ultimate failure (retry exhaustion) at `now`. In `Closed`
    /// this grows the streak and trips once it reaches the threshold; a
    /// failed `HalfOpen` probe re-opens (another trip, cooldown restarts).
    pub fn record_failure(&mut self, now: u64) {
        match self.state(now) {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.options.trip_threshold {
                    self.opened_at = Some(now);
                    self.trips += 1;
                }
            }
            BreakerState::HalfOpen => {
                self.opened_at = Some(now);
                self.trips += 1;
            }
            // A failure observed while Open (racing threads) keeps it open.
            BreakerState::Open => {}
        }
        self.probe_claimed_at = None;
    }

    /// Closed→Open transitions so far (HalfOpen probes failing back to Open
    /// included).
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// The current consecutive-failure streak (resets on success).
    pub fn consecutive_failures(&self) -> usize {
        self.consecutive_failures
    }
}

/// One churn action, targeting a source by its registered name.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnAction {
    /// Deregister the source: replica attempts skip it until revived.
    Kill(String),
    /// Re-register a killed source.
    Revive(String),
    /// Swap (or with `None` remove) the source's latency model.
    SetLatency(String, Option<LatencyModel>),
    /// Swap (or with `None` remove) the source's transient-failure model.
    SetFlaky(String, Option<FlakyModel>),
}

impl ChurnAction {
    /// The source the action targets.
    pub fn source(&self) -> &str {
        match self {
            ChurnAction::Kill(s)
            | ChurnAction::Revive(s)
            | ChurnAction::SetLatency(s, _)
            | ChurnAction::SetFlaky(s, _) => s,
        }
    }
}

/// A churn action with its virtual-time deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEvent {
    /// Virtual time (microseconds) at or after which the event fires.
    pub at_micros: u64,
    /// What happens.
    pub action: ChurnAction,
}

/// A deterministic script of timed churn events, kept sorted by deadline
/// (stable, so same-instant events fire in insertion order).
///
/// ```
/// use accrel_federation::{ChurnScript, LatencyModel};
///
/// let script = ChurnScript::builder()
///     .set_latency(100, "primary", Some(LatencyModel::recorded(500)))
///     .kill(250, "primary")
///     .revive(900, "primary")
///     .build();
/// assert_eq!(script.len(), 3);
/// assert_eq!(script.events()[1].at_micros, 250);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnScript {
    events: Vec<ChurnEvent>,
}

impl ChurnScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building a script.
    pub fn builder() -> ChurnScriptBuilder {
        ChurnScriptBuilder { events: Vec::new() }
    }

    /// The events, sorted by deadline.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the script has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The script without the event at `index` (for shrinking a failing
    /// scenario to a minimal script).
    pub fn without_event(&self, index: usize) -> ChurnScript {
        let mut events = self.events.clone();
        if index < events.len() {
            events.remove(index);
        }
        ChurnScript { events }
    }
}

/// Builder for [`ChurnScript`] — each call appends one timed event;
/// [`ChurnScriptBuilder::build`] stable-sorts by deadline.
#[derive(Debug, Clone)]
pub struct ChurnScriptBuilder {
    events: Vec<ChurnEvent>,
}

impl ChurnScriptBuilder {
    /// Kill `source` at `at_micros`.
    pub fn kill(mut self, at_micros: u64, source: impl Into<String>) -> Self {
        self.events.push(ChurnEvent {
            at_micros,
            action: ChurnAction::Kill(source.into()),
        });
        self
    }

    /// Revive `source` at `at_micros`.
    pub fn revive(mut self, at_micros: u64, source: impl Into<String>) -> Self {
        self.events.push(ChurnEvent {
            at_micros,
            action: ChurnAction::Revive(source.into()),
        });
        self
    }

    /// Swap `source`'s latency model at `at_micros` (`None` removes it).
    pub fn set_latency(
        mut self,
        at_micros: u64,
        source: impl Into<String>,
        latency: Option<LatencyModel>,
    ) -> Self {
        self.events.push(ChurnEvent {
            at_micros,
            action: ChurnAction::SetLatency(source.into(), latency),
        });
        self
    }

    /// Swap `source`'s transient-failure model at `at_micros` (`None`
    /// removes it).
    pub fn set_flaky(
        mut self,
        at_micros: u64,
        source: impl Into<String>,
        flaky: Option<FlakyModel>,
    ) -> Self {
        self.events.push(ChurnEvent {
            at_micros,
            action: ChurnAction::SetFlaky(source.into(), flaky),
        });
        self
    }

    /// Appends an already-built event.
    pub fn event(mut self, event: ChurnEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Finishes the script (stable sort by deadline).
    pub fn build(mut self) -> ChurnScript {
        self.events.sort_by_key(|e| e.at_micros);
        ChurnScript {
            events: self.events,
        }
    }
}

/// Configuration of a federation's chaos layer.
#[derive(Debug, Clone, Default)]
pub struct ChaosOptions {
    /// The churn script to replay.
    pub script: ChurnScript,
    /// Per-source circuit breakers (`None` disables breaking — dead-source
    /// gating and failover still apply).
    pub breaker: Option<BreakerOptions>,
    /// Virtual microseconds the controller's clock self-advances per wire
    /// call. Leave 0 for async federations (their executor's clock already
    /// advances); set non-zero for synchronous federations, which otherwise
    /// have no timeline for the script to fire against.
    pub pace_micros_per_call: u64,
}

impl ChaosOptions {
    /// Chaos with the given script, default breakers, and a synchronous
    /// pace of `pace_micros_per_call`.
    pub fn scripted(script: ChurnScript, pace_micros_per_call: u64) -> Self {
        Self {
            script,
            breaker: Some(BreakerOptions::default()),
            pace_micros_per_call,
        }
    }
}

/// A model swap popped from the script for the federation to forward to the
/// targeted source (kills/revivals are handled inside the controller).
#[derive(Debug, Clone)]
pub(crate) enum ModelSwap {
    Latency(Option<LatencyModel>),
    Flaky(Option<FlakyModel>),
}

/// The verdict of [`ChaosController::gate`] for one replica attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Gate {
    /// Attempt the call.
    Allow,
    /// The source is currently killed; skip it.
    Dead,
    /// The source's breaker is open; skip it without a wire attempt.
    Open,
}

#[derive(Debug)]
struct SourceSlot {
    alive: bool,
    breaker: Option<CircuitBreaker>,
    short_circuited: usize,
}

#[derive(Debug)]
struct ResolvedEvent {
    at_micros: u64,
    source: usize,
    swap: Option<ModelSwap>,
    /// `Some(alive)` for kill/revive events.
    set_alive: Option<bool>,
}

#[derive(Debug)]
struct ControllerInner {
    slots: Vec<SourceSlot>,
    pending: VecDeque<ResolvedEvent>,
    stats: ChaosStats,
}

/// The runtime half of the chaos layer, shared by a federation's calls:
/// fires due churn events, gates replica attempts, and drives the
/// per-source breakers. All mutation is behind one mutex, so concurrent
/// threaded calls stay consistent (their *interleaving* — hence the exact
/// stats split — may vary run to run; response content never does).
#[derive(Debug)]
pub struct ChaosController {
    clock: VirtualClock,
    pace_micros_per_call: u64,
    inner: Mutex<ControllerInner>,
}

impl ChaosController {
    /// Builds a controller for sources named `names` (index-aligned with
    /// the federation's source list) over `clock`. Fails with
    /// [`FederationError::UnknownSource`] if the script names a source that
    /// is not registered.
    pub(crate) fn new(
        options: &ChaosOptions,
        names: &[&str],
        clock: VirtualClock,
    ) -> Result<Self, FederationError> {
        let slots = names
            .iter()
            .map(|_| SourceSlot {
                alive: true,
                breaker: options.breaker.clone().map(CircuitBreaker::new),
                short_circuited: 0,
            })
            .collect();
        let mut pending = VecDeque::with_capacity(options.script.len());
        for event in options.script.events() {
            let name = event.action.source();
            let source = names
                .iter()
                .position(|n| *n == name)
                .ok_or_else(|| FederationError::UnknownSource(name.to_string()))?;
            let (swap, set_alive) = match &event.action {
                ChurnAction::Kill(_) => (None, Some(false)),
                ChurnAction::Revive(_) => (None, Some(true)),
                ChurnAction::SetLatency(_, l) => (Some(ModelSwap::Latency(l.clone())), None),
                ChurnAction::SetFlaky(_, f) => (Some(ModelSwap::Flaky(f.clone())), None),
            };
            pending.push_back(ResolvedEvent {
                at_micros: event.at_micros,
                source,
                swap,
                set_alive,
            });
        }
        Ok(Self {
            clock,
            pace_micros_per_call: options.pace_micros_per_call,
            inner: Mutex::new(ControllerInner {
                slots,
                pending,
                stats: ChaosStats::default(),
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ControllerInner> {
        self.inner.lock().expect("chaos controller poisoned")
    }

    /// The clock the script fires against (the federation's virtual clock
    /// for async federations; a private self-paced clock for sync ones).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Advances the private pace clock (sync federations; no-op at pace 0)
    /// and pops every event now due, applying kills/revivals internally.
    /// Returns the model swaps for the federation to forward.
    pub(crate) fn on_call(&self) -> Vec<(usize, ModelSwap)> {
        if self.pace_micros_per_call > 0 {
            self.clock.advance_micros(self.pace_micros_per_call);
        }
        let now = self.clock.now_micros();
        let mut inner = self.lock();
        let mut swaps = Vec::new();
        while inner.pending.front().is_some_and(|e| e.at_micros <= now) {
            let event = inner.pending.pop_front().expect("front checked");
            inner.stats.churn_events += 1;
            if let Some(alive) = event.set_alive {
                inner.slots[event.source].alive = alive;
                // A revived source starts with a fresh breaker streak.
                if alive {
                    if let Some(b) = &mut inner.slots[event.source].breaker {
                        b.record_success(now);
                    }
                }
            }
            if let Some(swap) = event.swap {
                swaps.push((event.source, swap));
            }
        }
        swaps
    }

    /// Should a call to `source` be attempted right now?
    pub(crate) fn gate(&self, source: usize) -> Gate {
        let now = self.clock.now_micros();
        let mut inner = self.lock();
        if !inner.slots[source].alive {
            inner.stats.dead_skips += 1;
            return Gate::Dead;
        }
        let refused = inner.slots[source]
            .breaker
            .as_mut()
            .is_some_and(|b| !b.try_claim_probe(now));
        if refused {
            inner.slots[source].short_circuited += 1;
            inner.stats.short_circuited += 1;
            return Gate::Open;
        }
        Gate::Allow
    }

    /// Feeds a call outcome on `source` to its breaker.
    pub(crate) fn record(&self, source: usize, success: bool) {
        let now = self.clock.now_micros();
        let mut inner = self.lock();
        if let Some(breaker) = &mut inner.slots[source].breaker {
            if success {
                breaker.record_success(now);
            } else {
                breaker.record_failure(now);
            }
        }
    }

    /// Counts a call answered by a non-primary replica.
    pub(crate) fn note_failover(&self) {
        self.lock().stats.failovers += 1;
    }

    /// The cumulative chaos statistics (breaker trips summed live from the
    /// per-source breakers).
    pub fn stats(&self) -> ChaosStats {
        let inner = self.lock();
        let mut stats = inner.stats.clone();
        stats.breaker_trips = inner
            .slots
            .iter()
            .filter_map(|s| s.breaker.as_ref())
            .map(|b| b.trips())
            .sum();
        stats
    }

    /// The breaker state of source `source` right now (`None` without
    /// breakers).
    pub fn breaker_state(&self, source: usize) -> Option<BreakerState> {
        let now = self.clock.now_micros();
        self.lock().slots[source]
            .breaker
            .as_ref()
            .map(|b| b.state(now))
    }

    /// Whether source `source` is currently registered (not killed).
    pub fn is_alive(&self, source: usize) -> bool {
        self.lock().slots[source].alive
    }

    /// Per-source breaker accounting for `per_source_stats`: `(trips,
    /// short_circuited)`.
    pub(crate) fn per_source(&self, source: usize) -> (usize, usize) {
        let inner = self.lock();
        let slot = &inner.slots[source];
        (
            slot.breaker.as_ref().map(|b| b.trips()).unwrap_or(0),
            slot.short_circuited,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: usize, cooldown: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerOptions {
            trip_threshold: threshold,
            cooldown_micros: cooldown,
        })
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut b = breaker(3, 100);
        assert_eq!(b.state(0), BreakerState::Closed);
        b.record_failure(10);
        b.record_failure(20);
        assert_eq!(b.state(20), BreakerState::Closed);
        assert!(b.allows(20));
        b.record_failure(30);
        assert_eq!(b.state(30), BreakerState::Open);
        assert!(!b.allows(30));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = breaker(2, 100);
        b.record_failure(0);
        b.record_success(1);
        b.record_failure(2);
        assert_eq!(b.state(2), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 1);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn cooldown_moves_open_to_half_open_without_an_event() {
        let mut b = breaker(1, 100);
        b.record_failure(50);
        assert_eq!(b.state(149), BreakerState::Open);
        assert_eq!(b.state(150), BreakerState::HalfOpen);
        assert!(b.allows(150));
    }

    #[test]
    fn half_open_probe_success_closes_the_circuit() {
        let mut b = breaker(1, 100);
        b.record_failure(0);
        assert_eq!(b.state(100), BreakerState::HalfOpen);
        b.record_success(100);
        assert_eq!(b.state(100), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn half_open_probe_failure_reopens_and_restarts_the_cooldown() {
        let mut b = breaker(1, 100);
        b.record_failure(0);
        b.record_failure(100); // failed probe
        assert_eq!(b.trips(), 2);
        assert_eq!(b.state(150), BreakerState::Open);
        assert_eq!(b.state(199), BreakerState::Open);
        assert_eq!(b.state(200), BreakerState::HalfOpen);
    }

    #[test]
    fn failures_while_open_do_not_extend_the_cooldown() {
        let mut b = breaker(1, 100);
        b.record_failure(0);
        b.record_failure(50); // racing observation while Open
        assert_eq!(b.trips(), 1);
        assert_eq!(b.state(100), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_hands_out_exactly_one_probe_slot() {
        let mut b = breaker(1, 100);
        b.record_failure(0);
        assert_eq!(b.state(100), BreakerState::HalfOpen);
        // Two concurrent attempts at the same virtual instant: both would
        // pass the read-only `allows`, but only the first claims the slot.
        assert!(b.allows(100));
        assert!(b.try_claim_probe(100));
        assert!(b.allows(100));
        assert!(!b.try_claim_probe(100));
        // Later attempts inside the same window stay refused too.
        assert!(!b.try_claim_probe(150));
        // The probe's outcome frees the slot (success closes the circuit).
        b.record_success(150);
        assert_eq!(b.state(150), BreakerState::Closed);
        assert!(b.try_claim_probe(150));
    }

    #[test]
    fn a_lost_probe_claim_expires_after_another_cooldown() {
        let mut b = breaker(1, 100);
        b.record_failure(0);
        assert!(b.try_claim_probe(100));
        // No outcome ever recorded (probe lost in flight): the claim blocks
        // further probes for one more cooldown, then ages out.
        assert!(!b.try_claim_probe(199));
        assert!(b.try_claim_probe(200));
    }

    #[test]
    fn a_failed_probe_frees_the_slot_for_the_next_half_open_window() {
        let mut b = breaker(1, 100);
        b.record_failure(0);
        assert!(b.try_claim_probe(100));
        b.record_failure(100); // failed probe: re-open, cooldown restarts
        assert!(!b.try_claim_probe(150)); // Open — not a claim question
        assert!(b.try_claim_probe(200)); // next HalfOpen window, fresh slot
    }

    #[test]
    fn churn_script_builder_stable_sorts_by_deadline() {
        let script = ChurnScript::builder()
            .revive(500, "a")
            .kill(100, "a")
            .set_flaky(
                100,
                "b",
                Some(FlakyModel {
                    period: 1,
                    fail_attempts: 9,
                    retries: 0,
                }),
            )
            .build();
        assert_eq!(script.len(), 3);
        assert_eq!(script.events()[0].action, ChurnAction::Kill("a".into()));
        // Same-deadline events keep insertion order (stable sort).
        assert!(matches!(
            script.events()[1].action,
            ChurnAction::SetFlaky(_, _)
        ));
        assert_eq!(script.events()[2].at_micros, 500);
    }

    #[test]
    fn without_event_drops_exactly_one_event() {
        let script = ChurnScript::builder()
            .kill(100, "a")
            .revive(200, "a")
            .build();
        let shrunk = script.without_event(0);
        assert_eq!(shrunk.len(), 1);
        assert_eq!(shrunk.events()[0].at_micros, 200);
        // Out-of-range index is a no-op.
        assert_eq!(script.without_event(99), script);
    }

    #[test]
    fn controller_fires_events_as_the_pace_clock_sweeps_past() {
        let options = ChaosOptions::scripted(
            ChurnScript::builder()
                .kill(25, "a")
                .set_latency(45, "b", Some(LatencyModel::recorded(7)))
                .revive(1_000, "a")
                .build(),
            10,
        );
        let controller = ChaosController::new(&options, &["a", "b"], VirtualClock::new()).unwrap();
        assert!(controller.is_alive(0));
        // Calls 1..3 advance the clock to 30µs: the kill fires.
        assert!(controller.on_call().is_empty());
        assert!(controller.on_call().is_empty());
        assert!(controller.on_call().is_empty());
        assert!(!controller.is_alive(0));
        assert_eq!(controller.gate(0), Gate::Dead);
        assert_eq!(controller.gate(1), Gate::Allow);
        // Call 5 (50µs) pops the latency swap for the federation to apply.
        let swaps = controller.on_call();
        assert!(swaps.is_empty() || swaps.len() == 1);
        let swaps2 = controller.on_call();
        assert_eq!(swaps.len() + swaps2.len(), 1);
        let stats = controller.stats();
        assert_eq!(stats.churn_events, 2);
        assert_eq!(stats.dead_skips, 1);
    }

    #[test]
    fn controller_rejects_scripts_naming_unknown_sources() {
        let options = ChaosOptions::scripted(ChurnScript::builder().kill(1, "ghost").build(), 1);
        let err = ChaosController::new(&options, &["a"], VirtualClock::new()).unwrap_err();
        assert_eq!(err, FederationError::UnknownSource("ghost".into()));
    }

    #[test]
    fn controller_breakers_short_circuit_and_recover() {
        let options = ChaosOptions {
            script: ChurnScript::new(),
            breaker: Some(BreakerOptions {
                trip_threshold: 2,
                cooldown_micros: 50,
            }),
            pace_micros_per_call: 10,
        };
        let controller = ChaosController::new(&options, &["a"], VirtualClock::new()).unwrap();
        controller.record(0, false);
        controller.record(0, false);
        assert_eq!(controller.breaker_state(0), Some(BreakerState::Open));
        assert_eq!(controller.gate(0), Gate::Open);
        // Five paced calls later the cooldown has elapsed: HalfOpen probe.
        for _ in 0..5 {
            let _ = controller.on_call();
        }
        assert_eq!(controller.breaker_state(0), Some(BreakerState::HalfOpen));
        assert_eq!(controller.gate(0), Gate::Allow);
        controller.record(0, true);
        assert_eq!(controller.breaker_state(0), Some(BreakerState::Closed));
        let stats = controller.stats();
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.short_circuited, 1);
        assert_eq!(controller.per_source(0), (1, 1));
    }
}
