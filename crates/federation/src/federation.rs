//! The federation registry: which source serves which access method.

use std::sync::Arc;

use accrel_access::{Access, AccessMethodId, AccessMethods, Response};
use accrel_schema::Schema;

use crate::chaos::{ChaosController, ChaosOptions, Gate, ModelSwap};
use crate::error::{FederationError, SourceError};
use crate::executor::VirtualClock;
use crate::source::{BackendStats, Source};

/// A registry of autonomous sources sharing one access-method registry,
/// with a total routing from methods to *ordered replica sets* of sources.
/// This is the "many Web forms, many providers" layer the paper's
/// federated-engine motivation assumes: the engine still reasons over a
/// single `ACS`, but each access is answered by the provider that owns the
/// form — or, when a [`ChaosController`] marks the primary dead or
/// open-circuit, by the next replica in its route (see [`crate::chaos`]).
pub struct Federation {
    methods: AccessMethods,
    sources: Vec<Box<dyn Source>>,
    /// Method index → ordered replica set (source indices, primary first).
    route: Vec<Vec<usize>>,
    chaos: Option<ChaosController>,
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("methods", &self.methods.len())
            .field(
                "sources",
                &self.sources.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("route", &self.route)
            .finish()
    }
}

impl Federation {
    /// Starts assembling a federation over `methods`.
    pub fn builder(methods: AccessMethods) -> FederationBuilder {
        let method_count = methods.len();
        FederationBuilder {
            methods,
            sources: Vec::new(),
            route: vec![Vec::new(); method_count],
            chaos: None,
        }
    }

    /// The common case of one source serving every method.
    pub fn single(source: impl Source + 'static) -> Self {
        let methods = source.methods().clone();
        let method_count = methods.len();
        Federation {
            methods,
            sources: vec![Box::new(source)],
            route: vec![vec![0]; method_count],
            chaos: None,
        }
    }

    /// The shared access-method registry.
    pub fn methods(&self) -> &AccessMethods {
        &self.methods
    }

    /// The schema the federation ranges over.
    pub fn schema(&self) -> &Arc<Schema> {
        self.methods.schema()
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// The primary source serving `method` (replicas, if any, sit behind
    /// it in the route — see [`Federation::replicas_for`]).
    pub fn source_for(&self, method: AccessMethodId) -> Option<&dyn Source> {
        self.route
            .get(method.index())
            .and_then(|r| r.first())
            .map(|&i| self.sources[i].as_ref())
    }

    /// The full ordered replica set serving `method`, primary first.
    pub fn replicas_for(&self, method: AccessMethodId) -> Vec<&dyn Source> {
        self.route
            .get(method.index())
            .map(|r| r.iter().map(|&i| self.sources[i].as_ref()).collect())
            .unwrap_or_default()
    }

    /// The chaos controller, when one is attached.
    pub fn chaos(&self) -> Option<&ChaosController> {
        self.chaos.as_ref()
    }

    /// Routes an access along its replica set and executes it.
    ///
    /// Without a chaos controller this is a plain dispatch to the primary.
    /// With one, each wire call first ticks the controller (pace clock +
    /// due churn events, forwarding model swaps to the targeted sources),
    /// then walks the route in order: dead and open-circuit replicas are
    /// skipped, a failing replica (retry exhaustion) feeds its breaker and
    /// the walk moves on, and the first successful response is returned —
    /// counted as a failover when it came from a non-primary position.
    /// Access-layer errors ([`SourceError::Access`]) abort immediately: a
    /// malformed access fails identically on every replica.
    pub fn call(&self, access: &Access) -> Result<Response, SourceError> {
        let route = self
            .route
            .get(access.method().index())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| SourceError::Unavailable {
                source: "<federation>".to_string(),
                reason: format!("no source serves {}", access.method()),
            })?;
        let Some(chaos) = &self.chaos else {
            return self.sources[route[0]].call(access);
        };
        for (idx, swap) in chaos.on_call() {
            match swap {
                ModelSwap::Latency(l) => self.sources[idx].set_latency(l),
                ModelSwap::Flaky(f) => self.sources[idx].set_flaky(f),
            }
        }
        let mut last_err: Option<SourceError> = None;
        for (position, &source_idx) in route.iter().enumerate() {
            match chaos.gate(source_idx) {
                Gate::Dead | Gate::Open => continue,
                Gate::Allow => {}
            }
            match self.sources[source_idx].call(access) {
                Ok(response) => {
                    chaos.record(source_idx, true);
                    if position > 0 {
                        chaos.note_failover();
                    }
                    return Ok(response);
                }
                Err(SourceError::Access(e)) => return Err(SourceError::Access(e)),
                Err(err) => {
                    chaos.record(source_idx, false);
                    last_err = Some(err);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| SourceError::Unavailable {
            source: "<federation>".to_string(),
            reason: format!(
                "every replica of {} is dead or open-circuit",
                access.method()
            ),
        }))
    }

    /// Aggregate statistics across every source.
    pub fn stats(&self) -> BackendStats {
        self.sources
            .iter()
            .fold(BackendStats::default(), |acc, s| acc.merged(&s.stats()))
    }

    /// Per-source statistics, in registration order. With a chaos
    /// controller attached, each entry also carries the source's breaker
    /// accounting ([`BackendStats::breaker_trips`] /
    /// [`BackendStats::short_circuited`]).
    pub fn per_source_stats(&self) -> Vec<(String, BackendStats)> {
        self.sources
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut stats = s.stats();
                if let Some(chaos) = &self.chaos {
                    let (trips, short_circuited) = chaos.per_source(i);
                    stats.breaker_trips = trips;
                    stats.short_circuited = short_circuited;
                }
                (s.name().to_string(), stats)
            })
            .collect()
    }

    /// Resets every source's statistics.
    pub fn reset_stats(&self) {
        for s in &self.sources {
            s.reset_stats();
        }
    }
}

/// Builder for [`Federation`].
pub struct FederationBuilder {
    methods: AccessMethods,
    sources: Vec<Box<dyn Source>>,
    route: Vec<Vec<usize>>,
    chaos: Option<ChaosOptions>,
}

impl std::fmt::Debug for FederationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederationBuilder")
            .field("methods", &self.methods.len())
            .field(
                "sources",
                &self.sources.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("route", &self.route)
            .finish()
    }
}

impl FederationBuilder {
    fn register(
        &mut self,
        source: impl Source + 'static,
        method_names: &[&str],
        primary: bool,
    ) -> Result<(), FederationError> {
        if !Arc::ptr_eq(source.methods().schema(), self.methods.schema()) {
            return Err(FederationError::SchemaMismatch {
                source: source.name().to_string(),
            });
        }
        let index = self.sources.len();
        for name in method_names {
            let id = self
                .methods
                .by_name(name)
                .map_err(|_| FederationError::UnknownMethod((*name).to_string()))?;
            let route = &mut self.route[id.index()];
            if primary && !route.is_empty() {
                return Err(FederationError::DuplicateRoute {
                    method: (*name).to_string(),
                });
            }
            route.push(index);
        }
        self.sources.push(Box::new(source));
        Ok(())
    }

    /// Registers `source` as the *primary* server of the named methods (at
    /// most one primary per method). The source must range over the same
    /// schema instance as the federation.
    pub fn source(
        mut self,
        source: impl Source + 'static,
        method_names: &[&str],
    ) -> Result<Self, FederationError> {
        self.register(source, method_names, true)?;
        Ok(self)
    }

    /// Registers `source` as a *replica* of the named methods: it is
    /// appended to each method's ordered route and only answers when every
    /// provider before it is dead or open-circuit (which requires a chaos
    /// controller — without one, replicas are never consulted). For the
    /// sequential-equivalence guarantee to survive failover, a replica must
    /// answer every access byte-for-byte like its primary: same hidden
    /// instance, same `ResponsePolicy` (same seed) — see [`crate::chaos`].
    pub fn replica(
        mut self,
        source: impl Source + 'static,
        method_names: &[&str],
    ) -> Result<Self, FederationError> {
        self.register(source, method_names, false)?;
        Ok(self)
    }

    /// Attaches a chaos layer (churn script, circuit breakers, failover
    /// accounting). The script's source names are resolved at
    /// [`FederationBuilder::build`] time.
    pub fn with_chaos(mut self, options: ChaosOptions) -> Self {
        self.chaos = Some(options);
        self
    }

    /// Finalises the federation; every method must have a serving source.
    pub fn build(self) -> Result<Federation, FederationError> {
        let unrouted: Vec<String> = self
            .route
            .iter()
            .enumerate()
            .filter(|(_, route)| route.is_empty())
            .map(|(i, _)| {
                self.methods
                    .get(AccessMethodId(i as u32))
                    .map(|m| m.name().to_string())
                    .unwrap_or_else(|_| format!("#{i}"))
            })
            .collect();
        if !unrouted.is_empty() {
            return Err(FederationError::UnroutedMethods(unrouted));
        }
        let chaos = match &self.chaos {
            Some(options) => {
                let names: Vec<&str> = self.sources.iter().map(|s| s.name()).collect();
                // The sync federation has no executor-driven clock: the
                // controller owns a private clock advanced by the pace.
                Some(ChaosController::new(options, &names, VirtualClock::new())?)
            }
            None => None,
        };
        Ok(Federation {
            methods: self.methods,
            sources: self.sources,
            route: self.route,
            chaos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SimulatedSource;
    use accrel_access::{binding, AccessMode};
    use accrel_schema::{Instance, Schema};

    fn setup() -> (AccessMethods, Instance) {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d), ("b", d)]).unwrap();
        b.relation("S", &[("a", d)]).unwrap();
        let schema = b.build();
        let mut mb = AccessMethods::builder(schema.clone());
        mb.add("RAcc", "R", &["a"], AccessMode::Dependent).unwrap();
        mb.add_free("SAll", "S", AccessMode::Dependent).unwrap();
        let methods = mb.build();
        let mut inst = Instance::new(schema);
        inst.insert_named("R", ["k", "v"]).unwrap();
        inst.insert_named("S", ["k"]).unwrap();
        (methods, inst)
    }

    #[test]
    fn routing_dispatches_to_the_right_source() {
        let (methods, inst) = setup();
        let r_source = SimulatedSource::exact("r-provider", inst.clone(), methods.clone());
        let s_source = SimulatedSource::exact("s-provider", inst, methods.clone());
        let federation = Federation::builder(methods.clone())
            .source(r_source, &["RAcc"])
            .unwrap()
            .source(s_source, &["SAll"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(federation.source_count(), 2);
        let r_acc = methods.by_name("RAcc").unwrap();
        let s_all = methods.by_name("SAll").unwrap();
        assert_eq!(federation.source_for(r_acc).unwrap().name(), "r-provider");
        assert_eq!(federation.source_for(s_all).unwrap().name(), "s-provider");
        let resp = federation
            .call(&Access::new(s_all, binding(Vec::<&str>::new())))
            .unwrap();
        assert_eq!(resp.len(), 1);
        let per_source = federation.per_source_stats();
        assert_eq!(per_source[0].1.source.calls, 0);
        assert_eq!(per_source[1].1.source.calls, 1);
        assert_eq!(federation.stats().source.calls, 1);
        federation.reset_stats();
        assert_eq!(federation.stats().source.calls, 0);
        assert!(format!("{federation:?}").contains("r-provider"));
    }

    #[test]
    fn single_source_federation_serves_everything() {
        let (methods, inst) = setup();
        let federation = Federation::single(SimulatedSource::exact("only", inst, methods.clone()));
        for (id, _) in methods.iter() {
            assert!(federation.source_for(id).is_some());
        }
        assert_eq!(federation.schema().relation_count(), 2);
    }

    #[test]
    fn builder_rejects_bad_registrations() {
        let (methods, inst) = setup();
        // Unknown method name.
        let err = Federation::builder(methods.clone())
            .source(
                SimulatedSource::exact("s", inst.clone(), methods.clone()),
                &["Nope"],
            )
            .unwrap_err();
        assert!(matches!(err, FederationError::UnknownMethod(_)));
        // Duplicate route.
        let err = Federation::builder(methods.clone())
            .source(
                SimulatedSource::exact("a", inst.clone(), methods.clone()),
                &["RAcc"],
            )
            .unwrap()
            .source(
                SimulatedSource::exact("b", inst.clone(), methods.clone()),
                &["RAcc"],
            )
            .unwrap_err();
        assert!(matches!(err, FederationError::DuplicateRoute { .. }));
        // Unrouted method at build time.
        let err = Federation::builder(methods.clone())
            .source(
                SimulatedSource::exact("a", inst.clone(), methods.clone()),
                &["RAcc"],
            )
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, FederationError::UnroutedMethods(_)));
        // Schema mismatch.
        let (other_methods, other_inst) = setup();
        let err = Federation::builder(methods)
            .source(
                SimulatedSource::exact("other", other_inst, other_methods),
                &["RAcc"],
            )
            .unwrap_err();
        assert!(matches!(err, FederationError::SchemaMismatch { .. }));
    }
}
