//! The async batch scheduler: the threaded
//! [`BatchScheduler`](crate::BatchScheduler)'s merge loop, with batches
//! realised as concurrently-polled futures on the hand-rolled mini-executor
//! instead of scoped worker threads.
//!
//! # Determinism invariant, inherited
//!
//! [`AsyncBatchScheduler::run`] executes the *same*
//! [`MergePlan`](crate::scheduler) merge loop as the threaded scheduler —
//! not equivalent code, the same function. Concurrency enters only inside
//! the `fetch` callback: a predicted batch's accesses are spawned as tasks
//! on a fresh [`Executor`] over the federation's shared
//! [`VirtualClock`](crate::VirtualClock), gated by a FIFO [`Semaphore`] of
//! `workers` permits (the in-flight cap),
//! and driven to completion before the merge loop consumes a single
//! response. Responses are collected by *batch position*, never completion
//! order, so for sources whose response is a deterministic function of the
//! access — every adapter in this crate — an async run reports the same
//! `access_sequence`, relevance-verdict log, answers and final
//! configuration as the threaded scheduler and the sequential engine
//! (pinned by the executor grid in `tests/federation_equivalence.rs`).
//!
//! What changes is the *cost model*: simulated round trips are awaited on
//! the virtual clock, so a batch's virtual makespan is its critical path
//! under the in-flight limit — `clock().now_micros()` before and after a
//! run measures exactly the latency-overlap payoff the paper's high-latency
//! deep-Web setting is about, with zero real sleeps and zero extra threads.
//! The F2 harness sweep reports this throughput-vs-in-flight curve.

use accrel_access::{Access, Response};
use accrel_engine::{RunOptions, RunReport, RunRequest, Strategy};
use accrel_query::Query;
use accrel_schema::Configuration;

use crate::async_federation::AsyncFederation;
use crate::error::SourceError;
use crate::executor::{Executor, Semaphore};
use crate::scheduler::MergePlan;

/// A federated engine executing relevance-verified batches as concurrently
/// awaited futures while preserving the sequential engine's semantics (see
/// the module documentation).
///
/// The API is construction-only: build with [`AsyncBatchScheduler::new`] /
/// [`AsyncBatchScheduler::with_options`], then [`AsyncBatchScheduler::run`].
/// For running the same request under every strategy use
/// [`accrel_engine::compare_strategies`] with the [`Async`] executor.
#[derive(Debug)]
pub struct AsyncBatchScheduler<'a> {
    federation: &'a AsyncFederation,
    query: Query,
    strategy: Strategy,
    options: RunOptions,
}

impl<'a> AsyncBatchScheduler<'a> {
    /// Creates a scheduler for `query` over `federation` using `strategy`.
    pub fn new(federation: &'a AsyncFederation, query: Query, strategy: Strategy) -> Self {
        Self {
            federation,
            query,
            strategy,
            options: RunOptions::default(),
        }
    }

    /// Replaces the run options.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the batched engine from `initial`. Everything in the report
    /// matches the threaded [`crate::BatchScheduler`] (and therefore the
    /// sequential engine) against sources returning the same responses;
    /// only the wall clock and the federation's *virtual* clock tell the
    /// runs apart.
    pub fn run(&self, initial: &Configuration) -> RunReport {
        let stats_before = self.federation.stats();
        let chaos_before = self.federation.chaos().map(|c| c.stats());
        let options = self.options.normalize();
        let plan = MergePlan {
            query: &self.query,
            strategy: self.strategy,
            options: &options,
            shared: None,
        };
        let mut report = plan.run(self.federation.methods(), initial, |batch| {
            fetch_batch_async(self.federation, batch, options.workers)
        });
        report.source_stats = self.federation.stats().since(&stats_before).source;
        if let (Some(chaos), Some(before)) = (self.federation.chaos(), chaos_before) {
            report.chaos = chaos.stats().since(&before);
        }
        report
    }
}

/// The async batch executor: a [`RunRequest`] handed to an
/// [`AsyncBatchScheduler`] over an [`AsyncFederation`] on the virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct Async<'a> {
    federation: &'a AsyncFederation,
}

impl<'a> Async<'a> {
    /// An async executor over `federation`.
    pub fn new(federation: &'a AsyncFederation) -> Self {
        Self { federation }
    }
}

impl accrel_engine::Executor for Async<'_> {
    fn name(&self) -> &'static str {
        "async"
    }

    fn execute(&self, request: &RunRequest, initial: &Configuration) -> RunReport {
        AsyncBatchScheduler::new(self.federation, request.query.clone(), request.strategy)
            .with_options(request.options.clone())
            .run(initial)
    }

    fn reset_stats(&self) {
        self.federation.reset_stats();
    }
}

/// Issues every access of `batch` against the federation as tasks of a
/// fresh mini-executor over the federation's clock, at most `in_flight`
/// awaiting a source at once (FIFO semaphore, so the admission order is the
/// batch order). The result vector is aligned with `batch` — task
/// completion order never shows, exactly like the threaded `fetch_batch`.
pub(crate) fn fetch_batch_async(
    federation: &AsyncFederation,
    batch: &[Access],
    in_flight: usize,
) -> Vec<Result<Response, SourceError>> {
    let executor = Executor::new(federation.clock().clone());
    let gate = Semaphore::new(in_flight);
    let handles: Vec<_> = batch
        .iter()
        .map(|access| {
            let access = access.clone();
            let gate = gate.clone();
            executor.spawn(async move {
                let _permit = gate.acquire().await;
                federation.call(access).await
            })
        })
        .collect();
    let stuck = executor.run();
    // `AsyncSource`'s suspension contract: call futures only wait on the
    // shared virtual clock, so a fully-advanced run leaves nothing pending.
    assert_eq!(
        stuck, 0,
        "async source futures may only suspend on the federation's \
         VirtualClock (see the AsyncSource suspension contract)"
    );
    handles
        .into_iter()
        .map(|h| h.take().expect("batch task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_source::BlockingSource;
    use crate::scheduler::BatchScheduler;
    use crate::source::{FlakyModel, LatencyModel, SimulatedSource};
    use crate::Federation;
    use accrel_core::SearchBudget;
    use accrel_engine::scenarios::bank_scenario;
    use accrel_engine::{DeepWebSource, FederatedEngine, ResponsePolicy};

    fn bank_source(scenario: &accrel_engine::scenarios::Scenario) -> SimulatedSource {
        SimulatedSource::exact("bank", scenario.instance.clone(), scenario.methods.clone())
            .with_latency(LatencyModel {
                base_micros: 100,
                jitter_micros: 40,
                seed: 5,
                sleep: false,
            })
            .with_paging(2)
    }

    #[test]
    fn async_run_matches_sequential_engine_for_every_strategy() {
        let scenario = bank_scenario();
        let sequential_source = DeepWebSource::new(
            scenario.instance.clone(),
            scenario.methods.clone(),
            ResponsePolicy::Exact,
        );
        let federation = AsyncFederation::single_simulated(bank_source(&scenario));
        for strategy in Strategy::all() {
            let sequential =
                FederatedEngine::new(&sequential_source, scenario.query.clone(), strategy)
                    .run(&scenario.initial_configuration);
            federation.reset_stats();
            let batched = AsyncBatchScheduler::new(&federation, scenario.query.clone(), strategy)
                .with_options(RunOptions {
                    batch_size: 4,
                    workers: 3,
                    ..RunOptions::default()
                })
                .run(&scenario.initial_configuration);
            assert_eq!(batched.access_sequence, sequential.access_sequence);
            assert_eq!(batched.certain, sequential.certain);
            assert_eq!(batched.answers, sequential.answers);
            assert_eq!(batched.relevance_verdicts, sequential.relevance_verdicts);
            assert!(batched
                .final_configuration
                .same_facts(&sequential.final_configuration));
        }
        // The simulated latencies elapsed on the virtual clock.
        assert!(federation.clock().now_micros() > 0);
    }

    #[test]
    fn higher_in_flight_limits_shrink_the_virtual_makespan() {
        let scenario = bank_scenario();
        let mut elapsed = Vec::new();
        for in_flight in [1usize, 4] {
            let federation = AsyncFederation::single_simulated(bank_source(&scenario));
            let before = federation.clock().now_micros();
            let report =
                AsyncBatchScheduler::new(&federation, scenario.query.clone(), Strategy::Exhaustive)
                    .with_options(RunOptions {
                        batch_size: 8,
                        workers: in_flight,
                        ..RunOptions::default()
                    })
                    .run(&scenario.initial_configuration);
            assert!(report.certain);
            elapsed.push((report, federation.clock().now_micros() - before));
        }
        let (serial_report, serial_micros) = &elapsed[0];
        let (overlapped_report, overlapped_micros) = &elapsed[1];
        // Same run, same simulated work...
        assert_eq!(
            serial_report.access_sequence,
            overlapped_report.access_sequence
        );
        assert_eq!(
            serial_report.source_stats.calls,
            overlapped_report.source_stats.calls
        );
        // ...but overlapping the round trips compresses virtual time.
        assert!(
            overlapped_micros < serial_micros,
            "in-flight 4 ({overlapped_micros}µs) must beat in-flight 1 ({serial_micros}µs)"
        );
    }

    #[test]
    fn eager_speculation_preserves_equivalence_async() {
        let scenario = bank_scenario();
        let engine_options = RunOptions {
            max_accesses: 12,
            budget: SearchBudget::shallow(),
            ..RunOptions::default()
        };
        let sequential_source = DeepWebSource::new(
            scenario.instance.clone(),
            scenario.methods.clone(),
            ResponsePolicy::Exact,
        );
        let federation = AsyncFederation::single_simulated(bank_source(&scenario));
        for strategy in [Strategy::LtrGuided, Strategy::Hybrid] {
            let sequential =
                FederatedEngine::new(&sequential_source, scenario.query.clone(), strategy)
                    .with_options(engine_options.clone())
                    .run(&scenario.initial_configuration);
            federation.reset_stats();
            let batched = AsyncBatchScheduler::new(&federation, scenario.query.clone(), strategy)
                .with_options(RunOptions {
                    batch_size: 3,
                    workers: 2,
                    speculation: accrel_engine::SpeculationMode::Eager,
                    ..engine_options.clone()
                })
                .run(&scenario.initial_configuration);
            assert_eq!(batched.access_sequence, sequential.access_sequence);
            assert_eq!(batched.relevance_verdicts, sequential.relevance_verdicts);
            assert!(batched
                .final_configuration
                .same_facts(&sequential.final_configuration));
        }
    }

    /// Satellite: a flaky async source exhausting its retries must surface
    /// the same calls/retries/failures split as the threaded path — pinned
    /// against `Federation::per_source_stats`.
    #[test]
    fn flaky_retry_exhaustion_reports_identical_stats_to_the_threaded_path() {
        let scenario = bank_scenario();
        let flaky = FlakyModel {
            // Every access is flaky and fails more often than the source
            // retries: every call ends in an ultimate failure.
            period: 1,
            fail_attempts: 3,
            retries: 1,
        };
        let build = || {
            SimulatedSource::exact(
                "flaky-bank",
                scenario.instance.clone(),
                scenario.methods.clone(),
            )
            .with_latency(LatencyModel::recorded(50))
            .with_flaky(flaky.clone())
        };
        let threaded_federation = Federation::single(build());
        let threaded = BatchScheduler::new(
            &threaded_federation,
            scenario.query.clone(),
            Strategy::Exhaustive,
        )
        .with_options(RunOptions {
            batch_size: 4,
            workers: 2,
            ..RunOptions::default()
        })
        .run(&scenario.initial_configuration);

        let async_federation = AsyncFederation::single_simulated(build());
        let asynced = AsyncBatchScheduler::new(
            &async_federation,
            scenario.query.clone(),
            Strategy::Exhaustive,
        )
        .with_options(RunOptions {
            batch_size: 4,
            workers: 2,
            ..RunOptions::default()
        })
        .run(&scenario.initial_configuration);

        // Every call failed on both paths, and the split is identical.
        assert_eq!(threaded.source_stats, asynced.source_stats);
        assert_eq!(threaded.access_sequence, asynced.access_sequence);
        assert!(asynced.source_stats.failures > 0);
        assert_eq!(asynced.source_stats.calls, 0);
        let threaded_per_source = threaded_federation.per_source_stats();
        let async_per_source = async_federation.per_source_stats();
        assert_eq!(threaded_per_source, async_per_source);
        assert_eq!(
            async_per_source[0].1.source.retries,
            async_per_source[0].1.source.failures * flaky.retries
        );
    }

    /// Partially-absorbed flakiness (retries suffice) also matches.
    #[test]
    fn absorbed_retries_report_identical_stats_to_the_threaded_path() {
        let scenario = bank_scenario();
        let build = || {
            SimulatedSource::exact(
                "mostly-fine",
                scenario.instance.clone(),
                scenario.methods.clone(),
            )
            .with_flaky(FlakyModel {
                period: 2,
                fail_attempts: 1,
                retries: 2,
            })
        };
        let threaded_federation = Federation::single(build());
        let threaded = BatchScheduler::new(
            &threaded_federation,
            scenario.query.clone(),
            Strategy::Hybrid,
        )
        .run(&scenario.initial_configuration);
        let async_federation = AsyncFederation::single_simulated(build());
        let asynced =
            AsyncBatchScheduler::new(&async_federation, scenario.query.clone(), Strategy::Hybrid)
                .run(&scenario.initial_configuration);
        assert!(threaded.certain && asynced.certain);
        assert_eq!(threaded.source_stats, asynced.source_stats);
        assert_eq!(
            threaded_federation.per_source_stats(),
            async_federation.per_source_stats()
        );
        assert_eq!(asynced.source_stats.failures, 0);
        assert!(asynced.source_stats.retries > 0);
    }

    /// Satellite: dropping the executor mid-batch (what dropping a
    /// scheduler mid-run amounts to — the batch futures die with it) leaks
    /// no tasks or timers and leaves the federation consistent for the next
    /// run.
    #[test]
    fn dropping_the_executor_mid_batch_leaks_nothing_and_stays_consistent() {
        let scenario = bank_scenario();
        let federation = AsyncFederation::single_simulated(bank_source(&scenario));
        let methods = federation.methods().clone();
        let batch: Vec<Access> = accrel_access::enumerate::well_formed_accesses(
            &scenario.initial_configuration,
            &methods,
            &accrel_access::enumerate::EnumerationOptions::default(),
        );
        assert!(batch.len() > 1);
        {
            let executor = Executor::new(federation.clock().clone());
            let gate = Semaphore::new(2);
            let fed = &federation;
            let _handles: Vec<_> = batch
                .iter()
                .map(|access| {
                    let access = access.clone();
                    let gate = gate.clone();
                    executor.spawn(async move {
                        let _permit = gate.acquire().await;
                        fed.call(access).await
                    })
                })
                .collect();
            // A few steps in: in-flight calls are parked on the clock.
            executor.run_until_stalled();
            assert!(executor.pending_tasks() > 0);
            assert!(federation.clock().timer_count() > 0);
            // Abandon the batch mid-flight.
        }
        // Cancelled sleeps deregistered their timers: nothing leaked.
        assert_eq!(federation.clock().timer_count(), 0);
        // The federation remains fully usable and deterministic: a fresh
        // run equals the sequential engine despite the aborted batch.
        federation.reset_stats();
        let sequential_source = DeepWebSource::new(
            scenario.instance.clone(),
            scenario.methods.clone(),
            ResponsePolicy::Exact,
        );
        let sequential =
            FederatedEngine::new(&sequential_source, scenario.query.clone(), Strategy::Hybrid)
                .run(&scenario.initial_configuration);
        let rerun = AsyncBatchScheduler::new(&federation, scenario.query.clone(), Strategy::Hybrid)
            .run(&scenario.initial_configuration);
        assert_eq!(rerun.access_sequence, sequential.access_sequence);
        assert!(rerun
            .final_configuration
            .same_facts(&sequential.final_configuration));
    }

    #[test]
    fn blocking_sources_work_and_leave_the_clock_untouched() {
        let scenario = bank_scenario();
        let federation = AsyncFederation::single(BlockingSource::new(SimulatedSource::exact(
            "bank",
            scenario.instance.clone(),
            scenario.methods.clone(),
        )));
        let report =
            AsyncBatchScheduler::new(&federation, scenario.query.clone(), Strategy::Exhaustive)
                .run(&scenario.initial_configuration);
        assert!(report.certain);
        assert_eq!(federation.clock().now_micros(), 0);
        assert!(report.source_stats.calls >= report.accesses_made);
    }

    #[test]
    fn compare_strategies_resets_stats_between_runs() {
        let scenario = bank_scenario();
        let federation = AsyncFederation::single_simulated(bank_source(&scenario));
        let request = RunRequest::new(scenario.query.clone()).with_options(RunOptions {
            max_accesses: 12,
            budget: SearchBudget::shallow(),
            ..RunOptions::default()
        });
        let reports = accrel_engine::compare_strategies(
            &Async::new(&federation),
            &request,
            &scenario.initial_configuration,
        );
        assert_eq!(reports.len(), Strategy::all().len());
        for report in &reports {
            assert_eq!(report.batch_stats.workers, 4);
            assert!(report.accesses_made <= 12);
            assert_eq!(report.access_sequence.len(), report.accesses_made);
        }
    }
}
