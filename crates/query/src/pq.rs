//! Positive (existential) queries: ∧/∨ combinations of atoms.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

use accrel_schema::{RelationId, Schema, SchemaError, Value};

use crate::atom::{Atom, Term, VarId};
use crate::cq::ConjunctiveQuery;

/// A positive-query formula: atoms combined with conjunction and disjunction
/// (no negation, no universal quantification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PqFormula {
    /// A relational atom.
    Atom(Atom),
    /// Conjunction of sub-formulas (empty conjunction is `true`).
    And(Vec<PqFormula>),
    /// Disjunction of sub-formulas (empty disjunction is `false`).
    Or(Vec<PqFormula>),
}

impl PqFormula {
    /// The constant `true` formula.
    pub fn truth() -> Self {
        PqFormula::And(Vec::new())
    }

    /// The constant `false` formula.
    pub fn falsity() -> Self {
        PqFormula::Or(Vec::new())
    }

    /// All atoms occurring in the formula.
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            PqFormula::Atom(a) => out.push(a),
            PqFormula::And(fs) | PqFormula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
        }
    }

    /// All variables occurring in the formula.
    pub fn variables(&self) -> HashSet<VarId> {
        self.atoms().iter().flat_map(|a| a.variables()).collect()
    }

    /// All constants occurring in the formula.
    pub fn constants(&self) -> HashSet<Value> {
        self.atoms().iter().flat_map(|a| a.constants()).collect()
    }

    /// The relations mentioned by the formula.
    pub fn relations(&self) -> HashSet<RelationId> {
        self.atoms().iter().map(|a| a.relation()).collect()
    }

    /// Number of atom occurrences.
    pub fn size(&self) -> usize {
        self.atoms().len()
    }

    /// Applies a partial substitution of variables by constants.
    pub fn substitute(&self, mapping: &HashMap<VarId, Value>) -> PqFormula {
        match self {
            PqFormula::Atom(a) => PqFormula::Atom(a.substitute(mapping)),
            PqFormula::And(fs) => {
                PqFormula::And(fs.iter().map(|f| f.substitute(mapping)).collect())
            }
            PqFormula::Or(fs) => PqFormula::Or(fs.iter().map(|f| f.substitute(mapping)).collect()),
        }
    }

    /// Converts the formula to disjunctive normal form: a list of conjuncts,
    /// each a list of atoms. The blow-up is exponential in the nesting of
    /// ∨ under ∧, which mirrors the complexity gap between CQs and PQs in
    /// the paper.
    pub fn to_dnf(&self) -> Vec<Vec<Atom>> {
        match self {
            PqFormula::Atom(a) => vec![vec![a.clone()]],
            PqFormula::Or(fs) => fs.iter().flat_map(|f| f.to_dnf()).collect(),
            PqFormula::And(fs) => {
                let mut acc: Vec<Vec<Atom>> = vec![Vec::new()];
                for f in fs {
                    let branches = f.to_dnf();
                    let mut next = Vec::with_capacity(acc.len() * branches.len().max(1));
                    for prefix in &acc {
                        for branch in &branches {
                            let mut combined = prefix.clone();
                            combined.extend(branch.iter().cloned());
                            next.push(combined);
                        }
                    }
                    acc = next;
                }
                acc
            }
        }
    }

    /// Builds the conjunction of two formulas, flattening nested `And`s.
    pub fn and(self, other: PqFormula) -> PqFormula {
        match (self, other) {
            (PqFormula::And(mut a), PqFormula::And(b)) => {
                a.extend(b);
                PqFormula::And(a)
            }
            (PqFormula::And(mut a), o) => {
                a.push(o);
                PqFormula::And(a)
            }
            (s, PqFormula::And(mut b)) => {
                b.insert(0, s);
                PqFormula::And(b)
            }
            (s, o) => PqFormula::And(vec![s, o]),
        }
    }

    /// Builds the disjunction of two formulas, flattening nested `Or`s.
    pub fn or(self, other: PqFormula) -> PqFormula {
        match (self, other) {
            (PqFormula::Or(mut a), PqFormula::Or(b)) => {
                a.extend(b);
                PqFormula::Or(a)
            }
            (PqFormula::Or(mut a), o) => {
                a.push(o);
                PqFormula::Or(a)
            }
            (s, PqFormula::Or(mut b)) => {
                b.insert(0, s);
                PqFormula::Or(b)
            }
            (s, o) => PqFormula::Or(vec![s, o]),
        }
    }
}

/// A positive existential query: a [`PqFormula`] plus free variables and a
/// variable-name table, over a schema.
///
/// The DNF expansion of the formula is exponential in the worst case, and
/// the decision procedures of `accrel-core` consult it repeatedly (most
/// notably `certain::is_certain` inside truncation replays). The expansion
/// is therefore computed once per query and cached behind a [`OnceLock`];
/// [`PositiveQuery::ucq`] borrows the cached slice, [`PositiveQuery::to_ucq`]
/// clones it for callers that need ownership. The cache is ignored by
/// equality and survives `Clone`.
#[derive(Debug, Clone)]
pub struct PositiveQuery {
    schema: Arc<Schema>,
    formula: PqFormula,
    free_vars: Vec<VarId>,
    var_names: Vec<String>,
    /// Lazily-computed UCQ expansion of `formula`.
    expanded: OnceLock<Vec<ConjunctiveQuery>>,
}

impl PartialEq for PositiveQuery {
    fn eq(&self, other: &Self) -> bool {
        // The `expanded` cache is derived state and excluded from equality.
        self.schema == other.schema
            && self.formula == other.formula
            && self.free_vars == other.free_vars
            && self.var_names == other.var_names
    }
}

impl Eq for PositiveQuery {}

impl PositiveQuery {
    /// Creates a positive query from raw parts. Prefer [`PqBuilder`].
    pub fn new(
        schema: Arc<Schema>,
        formula: PqFormula,
        free_vars: Vec<VarId>,
        var_names: Vec<String>,
    ) -> Self {
        Self {
            schema,
            formula,
            free_vars,
            var_names,
            expanded: OnceLock::new(),
        }
    }

    /// Starts building a positive query.
    pub fn builder(schema: Arc<Schema>) -> PqBuilder {
        PqBuilder::new(schema)
    }

    /// Wraps a conjunctive query as a positive query.
    pub fn from_cq(cq: &ConjunctiveQuery) -> Self {
        Self {
            schema: cq.schema().clone(),
            formula: PqFormula::And(cq.atoms().iter().cloned().map(PqFormula::Atom).collect()),
            free_vars: cq.free_vars().to_vec(),
            var_names: cq.var_names().to_vec(),
            expanded: OnceLock::new(),
        }
    }

    /// The schema the query ranges over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The underlying formula.
    pub fn formula(&self) -> &PqFormula {
        &self.formula
    }

    /// The free (output) variables.
    pub fn free_vars(&self) -> &[VarId] {
        &self.free_vars
    }

    /// Variable names indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// `true` when the query has no free variables.
    pub fn is_boolean(&self) -> bool {
        self.free_vars.is_empty()
    }

    /// Number of atom occurrences.
    pub fn size(&self) -> usize {
        self.formula.size()
    }

    /// The relations mentioned by the query.
    pub fn relations(&self) -> HashSet<RelationId> {
        self.formula.relations()
    }

    /// All constants occurring in the query.
    pub fn constants(&self) -> HashSet<Value> {
        self.formula.constants()
    }

    /// The query as a union of conjunctive queries, sharing this query's
    /// variable names and free variables. The expansion is computed on first
    /// use and cached for the lifetime of the query, so truncation replays
    /// and repeated certainty checks never re-expand the DNF.
    pub fn ucq(&self) -> &[ConjunctiveQuery] {
        self.expanded.get_or_init(|| {
            self.formula
                .to_dnf()
                .into_iter()
                .map(|atoms| {
                    ConjunctiveQuery::new(
                        self.schema.clone(),
                        atoms,
                        self.free_vars.clone(),
                        self.var_names.clone(),
                    )
                })
                .collect()
        })
    }

    /// Converts the query to an owned union of conjunctive queries (a clone
    /// of the cached [`PositiveQuery::ucq`] expansion).
    pub fn to_ucq(&self) -> Vec<ConjunctiveQuery> {
        self.ucq().to_vec()
    }

    /// Validates every disjunct against the schema.
    pub fn validate(&self) -> Result<(), SchemaError> {
        for cq in self.ucq() {
            cq.validate()?;
        }
        Ok(())
    }

    /// Applies a partial substitution of variables by constants.
    pub fn substitute(&self, mapping: &HashMap<VarId, Value>) -> PositiveQuery {
        PositiveQuery {
            schema: self.schema.clone(),
            formula: self.formula.substitute(mapping),
            free_vars: self
                .free_vars
                .iter()
                .copied()
                .filter(|v| !mapping.contains_key(v))
                .collect(),
            var_names: self.var_names.clone(),
            expanded: OnceLock::new(),
        }
    }

    fn fmt_formula(&self, f: &PqFormula, out: &mut String) {
        match f {
            PqFormula::Atom(a) => out.push_str(&a.display_with(&self.schema, &self.var_names)),
            PqFormula::And(fs) => {
                if fs.is_empty() {
                    out.push_str("true");
                    return;
                }
                out.push('(');
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" ∧ ");
                    }
                    self.fmt_formula(sub, out);
                }
                out.push(')');
            }
            PqFormula::Or(fs) => {
                if fs.is_empty() {
                    out.push_str("false");
                    return;
                }
                out.push('(');
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" ∨ ");
                    }
                    self.fmt_formula(sub, out);
                }
                out.push(')');
            }
        }
    }
}

impl fmt::Display for PositiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut body = String::new();
        self.fmt_formula(&self.formula, &mut body);
        if self.free_vars.is_empty() {
            write!(f, "Q() :- {body}")
        } else {
            let head: Vec<String> = self
                .free_vars
                .iter()
                .map(|v| {
                    self.var_names
                        .get(v.index())
                        .cloned()
                        .unwrap_or_else(|| v.to_string())
                })
                .collect();
            write!(f, "Q({}) :- {body}", head.join(", "))
        }
    }
}

/// Builder for [`PositiveQuery`] with named variables.
#[derive(Debug, Clone)]
pub struct PqBuilder {
    schema: Arc<Schema>,
    free_vars: Vec<VarId>,
    var_names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl PqBuilder {
    /// Creates a builder over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            free_vars: Vec::new(),
            var_names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Declares (or retrieves) a variable by name.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        let name = name.into();
        if let Some(&v) = self.by_name.get(&name) {
            return v;
        }
        let v = VarId(self.var_names.len() as u32);
        self.by_name.insert(name.clone(), v);
        self.var_names.push(name);
        v
    }

    /// Marks variables as free (output) variables.
    pub fn free(&mut self, vars: &[VarId]) -> &mut Self {
        self.free_vars = vars.to_vec();
        self
    }

    /// Creates an atom formula over the relation called `relation`.
    pub fn atom(&self, relation: &str, terms: Vec<Term>) -> Result<PqFormula, SchemaError> {
        let rel = self.schema.relation_by_name(relation)?;
        Ok(PqFormula::Atom(Atom::new(rel, terms)))
    }

    /// Creates an atom formula over a relation id.
    pub fn atom_id(&self, relation: RelationId, terms: Vec<Term>) -> PqFormula {
        PqFormula::Atom(Atom::new(relation, terms))
    }

    /// Finalises the query with the given formula.
    pub fn build(self, formula: PqFormula) -> PositiveQuery {
        PositiveQuery {
            schema: self.schema,
            formula,
            free_vars: self.free_vars,
            var_names: self.var_names,
            expanded: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d)]).unwrap();
        b.relation("S", &[("a", d)]).unwrap();
        b.relation("T", &[("a", d), ("b", d)]).unwrap();
        b.build()
    }

    #[test]
    fn example_3_2_queries() {
        // Q1 = ∃x R(x), Q2 = ∃x S(x) from Example 3.2.
        let s = schema();
        let mut b = PositiveQuery::builder(s.clone());
        let x = b.var("x");
        let f = b.atom("R", vec![Term::Var(x)]).unwrap();
        let q1 = b.build(f);
        assert!(q1.is_boolean());
        assert_eq!(q1.size(), 1);
        assert_eq!(q1.to_ucq().len(), 1);
        assert!(q1.validate().is_ok());
        assert_eq!(q1.to_string(), "Q() :- R(x)");
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        // (R(x) ∨ S(x)) ∧ (R(y) ∨ S(y)) has 4 disjuncts.
        let s = schema();
        let mut b = PositiveQuery::builder(s);
        let x = b.var("x");
        let y = b.var("y");
        let rx = b.atom("R", vec![Term::Var(x)]).unwrap();
        let sx = b.atom("S", vec![Term::Var(x)]).unwrap();
        let ry = b.atom("R", vec![Term::Var(y)]).unwrap();
        let sy = b.atom("S", vec![Term::Var(y)]).unwrap();
        let formula = rx.or(sx).and(ry.or(sy));
        let q = b.build(formula);
        let ucq = q.to_ucq();
        assert_eq!(ucq.len(), 4);
        for d in &ucq {
            assert_eq!(d.atoms().len(), 2);
        }
        assert_eq!(q.size(), 4);
        assert_eq!(q.relations().len(), 2);
    }

    #[test]
    fn truth_and_falsity() {
        let s = schema();
        let b = PositiveQuery::builder(s.clone());
        let q_true = b.build(PqFormula::truth());
        assert_eq!(q_true.to_ucq().len(), 1);
        assert!(q_true.to_ucq()[0].atoms().is_empty());
        assert_eq!(q_true.to_string(), "Q() :- true");
        let b = PositiveQuery::builder(s);
        let q_false = b.build(PqFormula::falsity());
        assert!(q_false.to_ucq().is_empty());
        assert_eq!(q_false.to_string(), "Q() :- false");
    }

    #[test]
    fn substitution_propagates_through_connectives() {
        let s = schema();
        let mut b = PositiveQuery::builder(s);
        let x = b.var("x");
        let rx = b.atom("R", vec![Term::Var(x)]).unwrap();
        let sx = b.atom("S", vec![Term::Var(x)]).unwrap();
        b.free(&[x]);
        let q = b.build(rx.or(sx));
        assert!(!q.is_boolean());
        let mut m = HashMap::new();
        m.insert(x, Value::sym("v"));
        let ground = q.substitute(&m);
        assert!(ground.is_boolean());
        assert!(ground.constants().contains(&Value::sym("v")));
        assert!(ground.formula().variables().is_empty());
    }

    #[test]
    fn from_cq_round_trip() {
        let s = schema();
        let mut cqb = ConjunctiveQuery::builder(s);
        let x = cqb.var("x");
        let y = cqb.var("y");
        cqb.atom("T", vec![Term::Var(x), Term::Var(y)]).unwrap();
        cqb.atom("R", vec![Term::Var(x)]).unwrap();
        let cq = cqb.build();
        let pq = PositiveQuery::from_cq(&cq);
        let back = pq.to_ucq();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].atoms(), cq.atoms());
        assert_eq!(pq.size(), 2);
    }

    #[test]
    fn flattening_of_connectives() {
        let s = schema();
        let b = PqBuilder::new(s.clone());
        let r = s.relation_by_name("R").unwrap();
        let a1 = b.atom_id(r, vec![Term::constant("1")]);
        let a2 = b.atom_id(r, vec![Term::constant("2")]);
        let a3 = b.atom_id(r, vec![Term::constant("3")]);
        let and = a1.clone().and(a2.clone()).and(a3.clone());
        match &and {
            PqFormula::And(fs) => assert_eq!(fs.len(), 3),
            _ => panic!("expected flattened And"),
        }
        let or = a1.clone().or(a2).or(a3);
        match &or {
            PqFormula::Or(fs) => assert_eq!(fs.len(), 3),
            _ => panic!("expected flattened Or"),
        }
        let mixed = PqFormula::truth().and(a1.clone());
        match mixed {
            PqFormula::And(fs) => assert_eq!(fs.len(), 1),
            _ => panic!("expected And"),
        }
        let mixed_or = PqFormula::falsity().or(a1);
        match mixed_or {
            PqFormula::Or(fs) => assert_eq!(fs.len(), 1),
            _ => panic!("expected Or"),
        }
    }

    #[test]
    fn display_nested_formula() {
        let s = schema();
        let mut b = PositiveQuery::builder(s);
        let x = b.var("x");
        let rx = b.atom("R", vec![Term::Var(x)]).unwrap();
        let sx = b.atom("S", vec![Term::Var(x)]).unwrap();
        let tx = b
            .atom("T", vec![Term::Var(x), Term::constant("c")])
            .unwrap();
        let q = b.build(rx.or(sx).and(tx));
        let shown = q.to_string();
        assert!(shown.contains("∨"));
        assert!(shown.contains("∧"));
        assert!(shown.contains("T(x, c)"));
    }

    #[test]
    fn ucq_expansion_is_cached_and_ignored_by_equality() {
        let s = schema();
        let mut b = PositiveQuery::builder(s.clone());
        let x = b.var("x");
        let rx = b.atom("R", vec![Term::Var(x)]).unwrap();
        let sx = b.atom("S", vec![Term::Var(x)]).unwrap();
        let q = b.build(rx.or(sx));
        // The same slice is returned on every call (no re-expansion).
        let first = q.ucq().as_ptr();
        let second = q.ucq().as_ptr();
        assert_eq!(first, second);
        assert_eq!(q.ucq().len(), 2);
        // An identical query whose cache is still cold compares equal.
        let mut b2 = PositiveQuery::builder(s);
        let x2 = b2.var("x");
        let rx2 = b2.atom("R", vec![Term::Var(x2)]).unwrap();
        let sx2 = b2.atom("S", vec![Term::Var(x2)]).unwrap();
        let cold = b2.build(rx2.or(sx2));
        assert_eq!(q, cold);
        // Clones carry the cached expansion.
        let cloned = q.clone();
        assert_eq!(cloned.ucq().len(), 2);
        assert_eq!(cloned, q);
    }

    #[test]
    fn validation_detects_bad_arity_in_some_disjunct() {
        let s = schema();
        let r = s.relation_by_name("T").unwrap();
        let bad = PositiveQuery::new(
            s,
            PqFormula::Or(vec![PqFormula::Atom(Atom::new(
                r,
                vec![Term::constant("only-one")],
            ))]),
            vec![],
            vec![],
        );
        assert!(bad.validate().is_err());
    }
}
