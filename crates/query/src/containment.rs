//! Classical query containment (no access limitations).
//!
//! * CQ ⊆ CQ is the Chandra–Merlin homomorphism test (NP-complete);
//! * UCQ ⊆ UCQ reduces to testing every disjunct of the left side against
//!   the right side as a whole (Sagiv–Yannakakis);
//! * PQ ⊆ PQ goes through the UCQ normal forms (ΠP2-complete, the
//!   exponential DNF being the source of the jump).
//!
//! Containment *under access limitations* — the notion the paper relates to
//! long-term relevance — lives in `accrel-core::containment`; classical
//! containment is its special case where every relation has a free,
//! independent access method (see Section 3 of the paper).

use accrel_schema::FreshSupply;

use crate::canonical::freeze;
use crate::cq::ConjunctiveQuery;
use crate::eval::{find_homomorphism, Valuation};
use crate::query::Query;

/// Classical containment test for two conjunctive queries of the same arity.
///
/// `q1 ⊆ q2` iff there is a homomorphism from `q2` into the canonical
/// database of `q1` mapping `q2`'s free variables onto the frozen head of
/// `q1` (position-wise).
pub fn cq_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    cq_contained_in_ucq(q1, std::slice::from_ref(q2))
}

/// Containment of a conjunctive query in a union of conjunctive queries:
/// the canonical database of `q1` must satisfy *some* disjunct of `q2s`
/// with the right head.
pub fn cq_contained_in_ucq(q1: &ConjunctiveQuery, q2s: &[ConjunctiveQuery]) -> bool {
    let mut supply = FreshSupply::new();
    let canon = freeze(q1, &mut supply);
    q2s.iter().any(|q2| {
        if q2.free_vars().len() != q1.free_vars().len() {
            return false;
        }
        let seed: Valuation = Valuation::from_pairs(
            q2.free_vars()
                .iter()
                .zip(canon.head.iter())
                .map(|(v, val)| (*v, val.clone())),
        );
        find_homomorphism(q2.atoms(), &canon.store, &seed).is_some()
    })
}

/// Containment of a union of conjunctive queries in another: every disjunct
/// of the left side must be contained in the right side as a whole.
pub fn ucq_contained_in_ucq(q1s: &[ConjunctiveQuery], q2s: &[ConjunctiveQuery]) -> bool {
    q1s.iter().all(|q1| cq_contained_in_ucq(q1, q2s))
}

/// Classical containment for arbitrary [`Query`] values (CQ or PQ), via
/// their UCQ normal forms.
pub fn query_contained_in(q1: &Query, q2: &Query) -> bool {
    ucq_contained_in_ucq(&q1.to_ucq(), &q2.to_ucq())
}

/// Classical equivalence of two queries.
pub fn query_equivalent(q1: &Query, q2: &Query) -> bool {
    query_contained_in(q1, q2) && query_contained_in(q2, q1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Term;
    use crate::pq::PositiveQuery;
    use accrel_schema::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d), ("b", d)]).unwrap();
        b.relation("S", &[("a", d)]).unwrap();
        b.build()
    }

    fn path_query(schema: Arc<Schema>, length: usize) -> ConjunctiveQuery {
        // R(x0, x1) ∧ ... ∧ R(x_{len-1}, x_len)
        let mut qb = ConjunctiveQuery::builder(schema);
        for i in 0..length {
            let a = qb.var(format!("x{i}"));
            let b = qb.var(format!("x{}", i + 1));
            qb.atom("R", vec![Term::Var(a), Term::Var(b)]).unwrap();
        }
        qb.build()
    }

    #[test]
    fn longer_paths_are_contained_in_shorter_ones() {
        // ∃ a path of length 3 ⊆ ∃ a path of length 2 ⊆ ∃ an edge.
        let s = schema();
        let p1 = path_query(s.clone(), 1);
        let p2 = path_query(s.clone(), 2);
        let p3 = path_query(s, 3);
        assert!(cq_contained_in(&p3, &p2));
        assert!(cq_contained_in(&p2, &p1));
        assert!(cq_contained_in(&p3, &p1));
        // But not the converse: an edge does not imply a 2-path.
        assert!(!cq_contained_in(&p1, &p2));
        assert!(!cq_contained_in(&p2, &p3));
    }

    #[test]
    fn self_loop_query_is_contained_in_every_path_query() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s.clone());
        let x = qb.var("x");
        qb.atom("R", vec![Term::Var(x), Term::Var(x)]).unwrap();
        let self_loop = qb.build();
        let p3 = path_query(s, 3);
        assert!(cq_contained_in(&self_loop, &p3));
        assert!(!cq_contained_in(&p3, &self_loop));
    }

    #[test]
    fn constants_restrict_containment() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s.clone());
        let x = qb.var("x");
        qb.atom("R", vec![Term::Var(x), Term::constant("5")])
            .unwrap();
        let q_const = qb.build();
        let mut qb = ConjunctiveQuery::builder(s);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        let q_var = qb.build();
        assert!(cq_contained_in(&q_const, &q_var));
        assert!(!cq_contained_in(&q_var, &q_const));
    }

    #[test]
    fn head_variables_must_correspond() {
        let s = schema();
        // Q1(x) :- R(x, y)   vs   Q2(y) :- R(x, y)
        let mut qb = ConjunctiveQuery::builder(s.clone());
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        qb.free(&[x]);
        let q_first = qb.build();
        let mut qb = ConjunctiveQuery::builder(s);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        qb.free(&[y]);
        let q_second = qb.build();
        // Selecting the source of an edge is not contained in selecting the
        // target, and vice versa.
        assert!(!cq_contained_in(&q_first, &q_second));
        assert!(!cq_contained_in(&q_second, &q_first));
        assert!(cq_contained_in(&q_first, &q_first));
        // Arity mismatch is never contained.
        let boolean = q_first.boolean_closure();
        assert!(!cq_contained_in(&q_first, &boolean));
    }

    #[test]
    fn ucq_containment_is_not_disjunct_wise_on_the_right() {
        // Classical Sagiv–Yannakakis subtlety: a disjunct of the left side
        // only needs to be contained in the union, which our per-disjunct
        // canonical-database test captures.
        let s = schema();
        let mut b = PositiveQuery::builder(s.clone());
        let x = b.var("x");
        let rx = b.atom("R", vec![Term::Var(x), Term::Var(x)]).unwrap();
        let sx = b.atom("S", vec![Term::Var(x)]).unwrap();
        let union = b.build(rx.or(sx));
        let mut qb = ConjunctiveQuery::builder(s);
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(y), Term::Var(y)]).unwrap();
        qb.atom("S", vec![Term::Var(y)]).unwrap();
        let both = qb.build();
        // both ⊆ union (it implies each disjunct separately, a fortiori the
        // union), union ⊄ both.
        assert!(query_contained_in(
            &Query::Cq(both.clone()),
            &Query::Pq(union.clone())
        ));
        assert!(!query_contained_in(
            &Query::Pq(union.clone()),
            &Query::Cq(both.clone())
        ));
        assert!(query_equivalent(
            &Query::Pq(union.clone()),
            &Query::Pq(union)
        ));
        assert!(!query_equivalent(
            &Query::Cq(both.clone()),
            &Query::Cq(path_query(both.schema().clone(), 1))
        ));
    }

    #[test]
    fn union_reordering_preserves_equivalence() {
        let s = schema();
        let mut b = PositiveQuery::builder(s.clone());
        let x = b.var("x");
        let rx = b.atom("R", vec![Term::Var(x), Term::Var(x)]).unwrap();
        let sx = b.atom("S", vec![Term::Var(x)]).unwrap();
        let q_ab = b.build(rx.clone().or(sx.clone()));
        let mut b2 = PositiveQuery::builder(s);
        let x2 = b2.var("x");
        let rx2 = b2.atom("R", vec![Term::Var(x2), Term::Var(x2)]).unwrap();
        let sx2 = b2.atom("S", vec![Term::Var(x2)]).unwrap();
        let q_ba = b2.build(sx2.or(rx2));
        let _ = (rx, sx);
        assert!(query_equivalent(&Query::Pq(q_ab), &Query::Pq(q_ba)));
    }

    #[test]
    fn empty_union_on_the_left_is_contained_in_everything() {
        let s = schema();
        let p1 = path_query(s, 1);
        assert!(ucq_contained_in_ucq(&[], std::slice::from_ref(&p1)));
        assert!(!ucq_contained_in_ucq(std::slice::from_ref(&p1), &[]));
    }
}
