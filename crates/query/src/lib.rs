//! # accrel-query
//!
//! Query languages and classical query reasoning for the `accrel` workspace:
//!
//! * [`ConjunctiveQuery`] (CQs) — conjunctions of relational atoms with
//!   optional free variables;
//! * [`PositiveQuery`] (PQs) — positive existential queries: arbitrary
//!   nestings of ∧ and ∨ over atoms (no negation, no universal quantifier);
//! * [`Query`] — a unified wrapper over both, normalisable to a union of
//!   conjunctive queries (UCQ) via [`Query::to_ucq`];
//! * evaluation by homomorphism search over a
//!   [`accrel_schema::FactStore`] ([`eval`]);
//! * certain answers over configurations ([`certain`]) — for monotone
//!   queries a Boolean query is certain at `Conf` iff it holds in `Conf`
//!   itself, which is the form used throughout the paper;
//! * classical query containment ([`containment`]) via canonical databases
//!   ([`canonical`]), used both directly and as the degenerate case of
//!   containment under access limitations (all accesses free).
//!
//! Complexity reminders from the paper (Section 2): CQ/PQ evaluation is
//! NP-complete in combined complexity and AC0 in data complexity; classical
//! containment is NP-complete for CQs and ΠP2-complete for PQs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atom;
pub mod canonical;
pub mod certain;
pub mod containment;
mod cq;
pub mod eval;
mod pq;
mod query;

pub use atom::{Atom, Term, VarId};
pub use cq::{ConjunctiveQuery, CqBuilder};
pub use eval::Valuation;
pub use pq::{PositiveQuery, PqBuilder, PqFormula};
pub use query::Query;
