//! Certain answers over configurations.
//!
//! A tuple `t` is a *certain answer* of `Q` at configuration `Conf` if
//! `t ∈ Q(I)` for every instance `I` consistent with `Conf` (Section 2 of
//! the paper). Because configurations are sub-instances of every consistent
//! instance and CQs/PQs are *monotone*, the minimal consistent instance is
//! `Conf` itself, so:
//!
//! * a Boolean monotone query is certain at `Conf` iff it holds in `Conf`;
//! * a tuple is a certain answer iff it is an answer over `Conf`.
//!
//! These facts are used pervasively by the relevance procedures.

use accrel_schema::{Configuration, RelationId, Tuple};

use crate::cq::ConjunctiveQuery;
use crate::eval;
use crate::pq::PositiveQuery;
use crate::query::Query;

/// Is the Boolean query certain (true in every consistent instance) at
/// `conf`? For non-Boolean queries this asks for certainty of the
/// existential closure.
pub fn is_certain(query: &Query, conf: &Configuration) -> bool {
    match query {
        Query::Cq(q) => eval::holds_cq(q, conf.store()),
        Query::Pq(q) => eval::holds_pq(q, conf.store()),
    }
}

/// Would the Boolean query be certain at `conf` extended with the `extra`
/// facts? Evaluates over the overlay without building the extended
/// configuration — the relevance witness searches call this once per
/// candidate valuation.
pub fn is_certain_with_extra(
    query: &Query,
    conf: &Configuration,
    extra: &[(RelationId, Tuple)],
) -> bool {
    match query {
        Query::Cq(q) => eval::holds_cq_with_extra(q, conf.store(), extra),
        Query::Pq(q) => eval::holds_pq_with_extra(q, conf.store(), extra),
    }
}

/// Certain-answer variant for a bare conjunctive query.
pub fn is_certain_cq(query: &ConjunctiveQuery, conf: &Configuration) -> bool {
    eval::holds_cq(query, conf.store())
}

/// Certain-answer variant for a bare positive query.
pub fn is_certain_pq(query: &PositiveQuery, conf: &Configuration) -> bool {
    eval::holds_pq(query, conf.store())
}

/// The certain answers of a (possibly non-Boolean) query at `conf`.
pub fn certain_answers(query: &Query, conf: &Configuration) -> Vec<Tuple> {
    match query {
        Query::Cq(q) => eval::answers_cq(q, conf.store()),
        Query::Pq(q) => eval::answers_pq(q, conf.store()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Term;
    use accrel_schema::{tuple, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d), ("b", d)]).unwrap();
        b.relation("S", &[("a", d)]).unwrap();
        b.build()
    }

    #[test]
    fn boolean_certainty_over_growing_configuration() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s.clone());
        let x = qb.var("x");
        qb.atom("R", vec![Term::Var(x), Term::constant("5")])
            .unwrap();
        qb.atom("S", vec![Term::Var(x)]).unwrap();
        let q: Query = qb.build().into();

        let mut conf = Configuration::empty(s);
        assert!(!is_certain(&q, &conf));
        conf.insert_named("R", ["3", "5"]).unwrap();
        assert!(!is_certain(&q, &conf));
        conf.insert_named("S", ["3"]).unwrap();
        assert!(is_certain(&q, &conf));
    }

    #[test]
    fn monotonicity_of_certainty() {
        // Once certain, adding facts never makes a monotone query uncertain.
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s.clone());
        let x = qb.var("x");
        qb.atom("S", vec![Term::Var(x)]).unwrap();
        let q: Query = qb.build().into();
        let mut conf = Configuration::empty(s);
        conf.insert_named("S", ["a"]).unwrap();
        assert!(is_certain(&q, &conf));
        conf.insert_named("R", ["a", "b"]).unwrap();
        conf.insert_named("S", ["b"]).unwrap();
        assert!(is_certain(&q, &conf));
    }

    #[test]
    fn certain_answers_of_open_query() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s.clone());
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        qb.atom("S", vec![Term::Var(y)]).unwrap();
        qb.free(&[x, y]);
        let q: Query = qb.build().into();
        let mut conf = Configuration::empty(s);
        conf.insert_named("R", ["1", "2"]).unwrap();
        conf.insert_named("R", ["1", "3"]).unwrap();
        conf.insert_named("S", ["2"]).unwrap();
        assert_eq!(certain_answers(&q, &conf), vec![tuple(["1", "2"])]);
    }

    #[test]
    fn pq_and_cq_helpers_agree_with_query_wrapper() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s.clone());
        let x = qb.var("x");
        qb.atom("S", vec![Term::Var(x)]).unwrap();
        let cq = qb.build();
        let pq = PositiveQuery::from_cq(&cq);
        let mut conf = Configuration::empty(s);
        assert!(!is_certain_cq(&cq, &conf));
        assert!(!is_certain_pq(&pq, &conf));
        conf.insert_named("S", ["v"]).unwrap();
        assert!(is_certain_cq(&cq, &conf));
        assert!(is_certain_pq(&pq, &conf));
        assert!(is_certain(&Query::Pq(pq), &conf));
    }
}
