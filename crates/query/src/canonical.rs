//! Canonical databases (frozen queries).
//!
//! The canonical database of a conjunctive query maps every variable to a
//! distinct labelled null ([`accrel_schema::Value::Fresh`]) and materialises
//! each atom as a fact. Classical containment `Q1 ⊆ Q2` of CQs is then the
//! Chandra–Merlin test: `Q2` must have a homomorphism into the canonical
//! database of `Q1` mapping `Q2`'s head to the frozen head of `Q1`.

use std::collections::HashMap;

use accrel_schema::{FactStore, FreshSupply, Tuple, Value};

use crate::atom::{Term, VarId};
use crate::cq::ConjunctiveQuery;
use crate::eval::Valuation;

/// The result of freezing a conjunctive query.
#[derive(Debug, Clone)]
pub struct CanonicalDatabase {
    /// Facts corresponding to the frozen atoms.
    pub store: FactStore,
    /// The assignment of variables to labelled nulls used for freezing.
    pub assignment: HashMap<VarId, Value>,
    /// The frozen head tuple (projection of the assignment onto the free
    /// variables).
    pub head: Tuple,
}

impl CanonicalDatabase {
    /// The frozen-head valuation, usable to seed homomorphism searches.
    pub fn head_valuation(&self, free_vars: &[VarId]) -> Valuation {
        Valuation::from_pairs(
            free_vars
                .iter()
                .zip(self.head.iter())
                .map(|(v, val)| (*v, val.clone())),
        )
    }
}

/// Freezes `query` into its canonical database.
///
/// Variables are assigned nulls from `supply` so that callers can freeze
/// several queries into the same value space without collisions. Constants
/// are kept as themselves.
pub fn freeze(query: &ConjunctiveQuery, supply: &mut FreshSupply) -> CanonicalDatabase {
    let mut assignment: HashMap<VarId, Value> = HashMap::new();
    let mut store = FactStore::new(query.schema().clone());
    for atom in query.atoms() {
        let values: Vec<Value> = atom
            .terms()
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => assignment
                    .entry(*v)
                    .or_insert_with(|| supply.next_value())
                    .clone(),
            })
            .collect();
        // The arity is taken from the atom; schema validation is the
        // caller's responsibility (freeze never fails on validated queries).
        let _ = store.insert(atom.relation(), Tuple::new(values));
    }
    // Free variables that do not occur in the body still get a null so the
    // head is total.
    for v in query.free_vars() {
        assignment.entry(*v).or_insert_with(|| supply.next_value());
    }
    let head = Tuple::new(
        query
            .free_vars()
            .iter()
            .map(|v| assignment[v].clone())
            .collect(),
    );
    CanonicalDatabase {
        store,
        assignment,
        head,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Term;
    use accrel_schema::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d), ("b", d)]).unwrap();
        b.relation("S", &[("a", d)]).unwrap();
        b.build()
    }

    #[test]
    fn freezing_materialises_each_atom() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        qb.atom("R", vec![Term::Var(y), Term::constant("c")])
            .unwrap();
        qb.atom("S", vec![Term::Var(x)]).unwrap();
        let q = qb.build();
        let mut supply = FreshSupply::new();
        let canon = freeze(&q, &mut supply);
        assert_eq!(canon.store.len(), 3);
        assert_eq!(canon.assignment.len(), 2);
        // The shared variable y produces a join between the two R-facts.
        let vals = canon.store.all_values();
        assert!(vals.contains(&Value::sym("c")));
        assert_eq!(vals.iter().filter(|v| v.is_fresh()).count(), 2);
        assert!(canon.head.is_empty());
    }

    #[test]
    fn head_freezing_for_open_queries() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        qb.free(&[y, x]);
        let q = qb.build();
        let mut supply = FreshSupply::new();
        let canon = freeze(&q, &mut supply);
        assert_eq!(canon.head.arity(), 2);
        assert_eq!(canon.head.get(0), canon.assignment.get(&y));
        assert_eq!(canon.head.get(1), canon.assignment.get(&x));
        let val = canon.head_valuation(q.free_vars());
        assert_eq!(val.get(x), canon.assignment.get(&x));
        assert_eq!(val.get(y), canon.assignment.get(&y));
    }

    #[test]
    fn head_variable_missing_from_body_still_frozen() {
        let s = schema();
        let q = ConjunctiveQuery::new(s, vec![], vec![VarId(0)], vec!["x".to_string()]);
        let mut supply = FreshSupply::new();
        let canon = freeze(&q, &mut supply);
        assert_eq!(canon.head.arity(), 1);
        assert!(canon.head.get(0).unwrap().is_fresh());
    }

    #[test]
    fn shared_supply_keeps_nulls_distinct_across_queries() {
        let s = schema();
        let mut qb1 = ConjunctiveQuery::builder(s.clone());
        let x1 = qb1.var("x");
        qb1.atom("S", vec![Term::Var(x1)]).unwrap();
        let q1 = qb1.build();
        let mut qb2 = ConjunctiveQuery::builder(s);
        let x2 = qb2.var("x");
        qb2.atom("S", vec![Term::Var(x2)]).unwrap();
        let q2 = qb2.build();
        let mut supply = FreshSupply::new();
        let c1 = freeze(&q1, &mut supply);
        let c2 = freeze(&q2, &mut supply);
        assert_ne!(c1.assignment[&x1], c2.assignment[&x2]);
    }
}
