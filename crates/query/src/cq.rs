//! Conjunctive queries.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use accrel_schema::{DomainId, RelationId, Schema, SchemaError, Value};

use crate::atom::{Atom, Term, VarId};

/// A conjunctive query (CQ): a conjunction of relational atoms, with a
/// (possibly empty) tuple of free variables.
///
/// A CQ with no free variables is a *Boolean* query; per Proposition 2.2 of
/// the paper all relevance problems reduce in polynomial time to the Boolean
/// case, and most of the decision procedures in `accrel-core` operate on
/// Boolean queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    schema: Arc<Schema>,
    atoms: Vec<Atom>,
    free_vars: Vec<VarId>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Creates a CQ from raw parts. Prefer [`CqBuilder`] for ergonomic
    /// construction.
    pub fn new(
        schema: Arc<Schema>,
        atoms: Vec<Atom>,
        free_vars: Vec<VarId>,
        var_names: Vec<String>,
    ) -> Self {
        Self {
            schema,
            atoms,
            free_vars,
            var_names,
        }
    }

    /// Starts building a CQ over `schema`.
    pub fn builder(schema: Arc<Schema>) -> CqBuilder {
        CqBuilder::new(schema)
    }

    /// The schema the query is expressed over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The atoms (subgoals) of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The free (output) variables.
    pub fn free_vars(&self) -> &[VarId] {
        &self.free_vars
    }

    /// The names of all variables, indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The name of one variable (falls back to `?n`).
    pub fn var_name(&self, v: VarId) -> String {
        self.var_names
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| v.to_string())
    }

    /// Number of variables declared in the query.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// `true` when the query has no free variables.
    pub fn is_boolean(&self) -> bool {
        self.free_vars.is_empty()
    }

    /// The output arity of the query.
    pub fn output_arity(&self) -> usize {
        self.free_vars.len()
    }

    /// All variables occurring in the atoms.
    pub fn variables(&self) -> HashSet<VarId> {
        self.atoms.iter().flat_map(|a| a.variables()).collect()
    }

    /// All constants occurring in the atoms.
    pub fn constants(&self) -> HashSet<Value> {
        self.atoms.iter().flat_map(|a| a.constants()).collect()
    }

    /// The relations mentioned by the query.
    pub fn relations(&self) -> HashSet<RelationId> {
        self.atoms.iter().map(Atom::relation).collect()
    }

    /// Number of atoms mentioning `relation`.
    pub fn occurrences_of(&self, relation: RelationId) -> usize {
        self.atoms
            .iter()
            .filter(|a| a.relation() == relation)
            .count()
    }

    /// Validates the query against its schema: every atom must have the
    /// right arity, and every variable must be used consistently with the
    /// abstract domains of the positions it occurs at (the paper requires
    /// `Dom(a) = Dom(a')` whenever the same variable occurs at attributes
    /// `a` and `a'`).
    pub fn validate(&self) -> Result<(), SchemaError> {
        self.infer_var_domains().map(|_| ())
    }

    /// Infers the abstract domain of every variable from the positions it
    /// occurs at; fails if a variable is used at positions of two different
    /// domains or if an atom has the wrong arity.
    pub fn infer_var_domains(&self) -> Result<HashMap<VarId, DomainId>, SchemaError> {
        let mut domains: HashMap<VarId, DomainId> = HashMap::new();
        for atom in &self.atoms {
            let rel = self.schema.relation(atom.relation())?;
            if rel.arity() != atom.arity() {
                return Err(SchemaError::ArityMismatch {
                    relation: atom.relation(),
                    expected: rel.arity(),
                    actual: atom.arity(),
                });
            }
            for (pos, term) in atom.terms().iter().enumerate() {
                if let Term::Var(v) = term {
                    let d = rel.domain_at(pos);
                    match domains.get(v) {
                        None => {
                            domains.insert(*v, d);
                        }
                        Some(existing) if *existing == d => {}
                        Some(existing) => {
                            // Report the clash through the InvalidPosition
                            // variant carrying the offending relation/pos;
                            // the message names the conflicting position.
                            let _ = existing;
                            return Err(SchemaError::InvalidPosition {
                                relation: atom.relation(),
                                position: pos,
                            });
                        }
                    }
                }
            }
        }
        Ok(domains)
    }

    /// The output domains of the query (domains of the free variables), in
    /// order. Fails if validation fails or a free variable never occurs in
    /// the body.
    pub fn output_domains(&self) -> Result<Vec<DomainId>, SchemaError> {
        let domains = self.infer_var_domains()?;
        self.free_vars
            .iter()
            .map(|v| {
                domains
                    .get(v)
                    .copied()
                    .ok_or(SchemaError::UnknownDomain(self.var_name(*v)))
            })
            .collect()
    }

    /// Applies a partial substitution of variables by constants, producing a
    /// new query. Substituted free variables are removed from the head.
    pub fn substitute(&self, mapping: &HashMap<VarId, Value>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            schema: self.schema.clone(),
            atoms: self.atoms.iter().map(|a| a.substitute(mapping)).collect(),
            free_vars: self
                .free_vars
                .iter()
                .copied()
                .filter(|v| !mapping.contains_key(v))
                .collect(),
            var_names: self.var_names.clone(),
        }
    }

    /// Returns the Boolean query obtained by existentially closing all free
    /// variables.
    pub fn boolean_closure(&self) -> ConjunctiveQuery {
        ConjunctiveQuery {
            schema: self.schema.clone(),
            atoms: self.atoms.clone(),
            free_vars: Vec::new(),
            var_names: self.var_names.clone(),
        }
    }

    /// Returns a new query whose atom set is `self`'s restricted to the
    /// atoms at the given indices (used by the guess-based algorithms).
    pub fn restrict_to_atoms(&self, indices: &[usize]) -> ConjunctiveQuery {
        ConjunctiveQuery {
            schema: self.schema.clone(),
            atoms: indices
                .iter()
                .filter_map(|&i| self.atoms.get(i).cloned())
                .collect(),
            free_vars: self.free_vars.clone(),
            var_names: self.var_names.clone(),
        }
    }

    /// Returns a new query with one extra atom appended.
    pub fn with_atom(&self, atom: Atom) -> ConjunctiveQuery {
        let mut atoms = self.atoms.clone();
        atoms.push(atom);
        ConjunctiveQuery {
            schema: self.schema.clone(),
            atoms,
            free_vars: self.free_vars.clone(),
            var_names: self.var_names.clone(),
        }
    }

    /// Conjoins `self` with `other` (same schema), renaming `other`'s
    /// variables so they do not clash with `self`'s. The result is Boolean.
    pub fn conjoin_disjoint(&self, other: &ConjunctiveQuery) -> ConjunctiveQuery {
        let offset = self.var_names.len() as u32;
        let mut var_names = self.var_names.clone();
        for name in &other.var_names {
            var_names.push(format!("{name}'"));
        }
        let renaming: HashMap<VarId, VarId> = (0..other.var_names.len() as u32)
            .map(|i| (VarId(i), VarId(i + offset)))
            .collect();
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().map(|a| a.rename_vars(&renaming)));
        ConjunctiveQuery {
            schema: self.schema.clone(),
            atoms,
            free_vars: Vec::new(),
            var_names,
        }
    }

    /// The "subgoal graph" `G(Q)` used by Proposition 4.3: vertices are atom
    /// indices, edges connect atoms sharing a variable. Returns, for each
    /// atom, the list of connected-component member indices of its component.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.atoms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if self.atoms[i].shares_variable_with(&self.atoms[j]) {
                    let ri = find(&mut parent, i);
                    let rj = find(&mut parent, j);
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut comps: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            comps.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = comps.into_values().collect();
        out.sort();
        out
    }

    /// `true` when the query's subgoal graph is connected (or has ≤ 1 atom).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.free_vars.is_empty() {
            write!(f, "Q() :- ")?;
        } else {
            let head: Vec<String> = self.free_vars.iter().map(|v| self.var_name(*v)).collect();
            write!(f, "Q({}) :- ", head.join(", "))?;
        }
        if self.atoms.is_empty() {
            write!(f, "true")?;
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.display_with(&self.schema, &self.var_names))?;
        }
        Ok(())
    }
}

/// Builder for [`ConjunctiveQuery`] with named variables.
///
/// ```
/// use accrel_schema::Schema;
/// use accrel_query::{ConjunctiveQuery, Term};
///
/// let mut b = Schema::builder();
/// let d = b.domain("D").unwrap();
/// b.relation("R", &[("a", d), ("b", d)]).unwrap();
/// let schema = b.build();
///
/// let mut q = ConjunctiveQuery::builder(schema);
/// let x = q.var("x");
/// let y = q.var("y");
/// q.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
/// q.atom("R", vec![Term::Var(y), Term::constant("stop")]).unwrap();
/// let q = q.build();
/// assert!(q.is_boolean());
/// assert_eq!(q.atoms().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CqBuilder {
    schema: Arc<Schema>,
    atoms: Vec<Atom>,
    free_vars: Vec<VarId>,
    var_names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl CqBuilder {
    /// Creates an empty builder over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            atoms: Vec::new(),
            free_vars: Vec::new(),
            var_names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Declares (or retrieves) a variable by name.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        let name = name.into();
        if let Some(&v) = self.by_name.get(&name) {
            return v;
        }
        let v = VarId(self.var_names.len() as u32);
        self.by_name.insert(name.clone(), v);
        self.var_names.push(name);
        v
    }

    /// Marks variables as free (output) variables, in the given order.
    pub fn free(&mut self, vars: &[VarId]) -> &mut Self {
        self.free_vars = vars.to_vec();
        self
    }

    /// Adds an atom over the relation called `relation`.
    pub fn atom(&mut self, relation: &str, terms: Vec<Term>) -> Result<&mut Self, SchemaError> {
        let rel = self.schema.relation_by_name(relation)?;
        self.atoms.push(Atom::new(rel, terms));
        Ok(self)
    }

    /// Adds an atom over a relation id.
    pub fn atom_id(&mut self, relation: RelationId, terms: Vec<Term>) -> &mut Self {
        self.atoms.push(Atom::new(relation, terms));
        self
    }

    /// Shorthand: adds an atom whose terms are all fresh/named variables.
    pub fn atom_vars(
        &mut self,
        relation: &str,
        var_names: &[&str],
    ) -> Result<&mut Self, SchemaError> {
        let terms: Vec<Term> = var_names.iter().map(|n| Term::Var(self.var(*n))).collect();
        self.atom(relation, terms)
    }

    /// The number of atoms added so far.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Finalises the query.
    pub fn build(self) -> ConjunctiveQuery {
        ConjunctiveQuery {
            schema: self.schema,
            atoms: self.atoms,
            free_vars: self.free_vars,
            var_names: self.var_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let emp = b.domain("EmpId").unwrap();
        let text = b.domain("Text").unwrap();
        let off = b.domain("OffId").unwrap();
        let state = b.domain("State").unwrap();
        let offering = b.domain("Offering").unwrap();
        b.relation(
            "Employee",
            &[
                ("EmpId", emp),
                ("Title", text),
                ("LastName", text),
                ("FirstName", text),
                ("OffId", off),
            ],
        )
        .unwrap();
        b.relation(
            "Office",
            &[
                ("OffId", off),
                ("StreetAddress", text),
                ("State", state),
                ("Phone", text),
            ],
        )
        .unwrap();
        b.relation("Approval", &[("State", state), ("Offering", offering)])
            .unwrap();
        b.build()
    }

    /// The Boolean query of Section 1: is there a loan officer in an
    /// Illinois office, and is the bank approved for 30-year mortgages in
    /// Illinois?
    fn bank_query(schema: Arc<Schema>) -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::builder(schema);
        let e = q.var("e");
        let t_ln = q.var("ln");
        let t_fn = q.var("fn");
        let o = q.var("o");
        let addr = q.var("addr");
        let phone = q.var("phone");
        q.atom(
            "Employee",
            vec![
                Term::Var(e),
                Term::constant("loan officer"),
                Term::Var(t_ln),
                Term::Var(t_fn),
                Term::Var(o),
            ],
        )
        .unwrap();
        q.atom(
            "Office",
            vec![
                Term::Var(o),
                Term::Var(addr),
                Term::constant("Illinois"),
                Term::Var(phone),
            ],
        )
        .unwrap();
        q.atom(
            "Approval",
            vec![Term::constant("Illinois"), Term::constant("30yr")],
        )
        .unwrap();
        q.build()
    }

    #[test]
    fn bank_query_structure() {
        let s = schema();
        let q = bank_query(s.clone());
        assert!(q.is_boolean());
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.var_count(), 6);
        assert_eq!(q.relations().len(), 3);
        assert_eq!(q.occurrences_of(s.relation_by_name("Employee").unwrap()), 1);
        assert!(q.constants().contains(&Value::sym("Illinois")));
        assert!(q.validate().is_ok());
        assert_eq!(q.output_arity(), 0);
    }

    #[test]
    fn var_domains_are_inferred() {
        let s = schema();
        let q = bank_query(s.clone());
        let domains = q.infer_var_domains().unwrap();
        let off = s.domain_by_name("OffId").unwrap();
        let o = q
            .var_names()
            .iter()
            .position(|n| n == "o")
            .map(|i| VarId(i as u32))
            .unwrap();
        assert_eq!(domains[&o], off);
    }

    #[test]
    fn domain_clash_is_detected() {
        let s = schema();
        let mut q = ConjunctiveQuery::builder(s);
        let x = q.var("x");
        // x used both as an EmpId (pos 0 of Employee) and as a State
        // (pos 0 of Approval): domains clash.
        q.atom(
            "Employee",
            vec![
                Term::Var(x),
                Term::constant("t"),
                Term::constant("l"),
                Term::constant("f"),
                Term::constant("o"),
            ],
        )
        .unwrap();
        q.atom("Approval", vec![Term::Var(x), Term::constant("30yr")])
            .unwrap();
        let q = q.build();
        assert!(q.validate().is_err());
    }

    #[test]
    fn arity_mismatch_is_detected() {
        let s = schema();
        let rel = s.relation_by_name("Approval").unwrap();
        let q = ConjunctiveQuery::new(
            s,
            vec![Atom::new(rel, vec![Term::constant("x")])],
            vec![],
            vec![],
        );
        assert!(matches!(
            q.validate(),
            Err(SchemaError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn substitution_and_closure() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("Approval", vec![Term::Var(x), Term::Var(y)])
            .unwrap();
        qb.free(&[x]);
        let q = qb.build();
        assert!(!q.is_boolean());
        assert_eq!(q.output_arity(), 1);
        let mut m = HashMap::new();
        m.insert(x, Value::sym("Illinois"));
        let subst = q.substitute(&m);
        assert!(subst.is_boolean());
        assert!(subst.atoms()[0]
            .constants()
            .contains(&Value::sym("Illinois")));
        let closed = q.boolean_closure();
        assert!(closed.is_boolean());
        assert_eq!(closed.atoms().len(), 1);
    }

    #[test]
    fn output_domains() {
        let s = schema();
        let state = s.domain_by_name("State").unwrap();
        let mut qb = ConjunctiveQuery::builder(s);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("Approval", vec![Term::Var(x), Term::Var(y)])
            .unwrap();
        qb.free(&[x]);
        let q = qb.build();
        assert_eq!(q.output_domains().unwrap(), vec![state]);
        // a free variable that never occurs in the body has no domain
        let q_bad = ConjunctiveQuery::new(
            q.schema().clone(),
            q.atoms().to_vec(),
            vec![VarId(9)],
            q.var_names().to_vec(),
        );
        assert!(q_bad.output_domains().is_err());
    }

    #[test]
    fn connected_components_of_bank_query() {
        let s = schema();
        let q = bank_query(s);
        // Employee–Office share `o`; Approval is ground (its own component).
        let comps = q.connected_components();
        assert_eq!(comps.len(), 2);
        assert!(!q.is_connected());
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
    }

    #[test]
    fn restrict_with_and_conjoin() {
        let s = schema();
        let q = bank_query(s.clone());
        let restricted = q.restrict_to_atoms(&[0, 2]);
        assert_eq!(restricted.atoms().len(), 2);
        let extended = q.with_atom(q.atoms()[0].clone());
        assert_eq!(extended.atoms().len(), 4);
        let conjoined = q.conjoin_disjoint(&q);
        assert_eq!(conjoined.atoms().len(), 6);
        assert_eq!(conjoined.var_count(), 12);
        assert!(conjoined.validate().is_ok());
        // Renamed variables do not collide
        assert_eq!(conjoined.variables().len(), 12);
    }

    #[test]
    fn builder_reuses_named_variables_and_displays() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s);
        let x1 = qb.var("x");
        let x2 = qb.var("x");
        assert_eq!(x1, x2);
        qb.atom_vars("Approval", &["x", "y"]).unwrap();
        assert_eq!(qb.atom_count(), 1);
        let q = qb.build();
        let shown = q.to_string();
        assert!(shown.contains("Approval(x, y)"));
        assert!(shown.starts_with("Q() :- "));
        assert_eq!(q.var_name(VarId(0)), "x");
        assert_eq!(q.var_name(VarId(77)), "?77");
    }

    #[test]
    fn empty_query_displays_true() {
        let s = schema();
        let q = ConjunctiveQuery::new(s, vec![], vec![], vec![]);
        assert_eq!(q.to_string(), "Q() :- true");
        assert!(q.is_connected());
        assert_eq!(q.connected_components().len(), 0);
    }

    #[test]
    fn unknown_relation_in_builder_fails() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s);
        assert!(qb.atom("Nope", vec![]).is_err());
    }
}
