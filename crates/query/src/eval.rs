//! Query evaluation by homomorphism search.
//!
//! Evaluation of a conjunctive query over a fact store is a backtracking
//! join: atoms are processed in order, and for each atom the candidate
//! tuples consistent with the current partial valuation are tried. This is
//! the textbook NP procedure; data complexity is polynomial (AC0) for a
//! fixed query, which experiment E5 of the benchmark harness demonstrates
//! empirically.
//!
//! Candidates are drawn through the fact store's per-(relation, attribute)
//! indexes ([`FactStore::candidates`]): the positions of an atom already
//! determined by the partial valuation (constants and bound variables)
//! become index constraints, so joins probe posting lists instead of
//! scanning whole relations.
//!
//! The `_with_extra` variants evaluate over a store *plus* a small slice of
//! pending facts without materialising the union — the relevance witness
//! searches use them to test "would the query hold after these accesses"
//! once per candidate valuation, where cloning the configuration would
//! dominate the running time.

use std::collections::HashMap;

use accrel_schema::{FactStore, RelationId, Tuple, Value};

use crate::atom::{Atom, Term, VarId};
use crate::cq::ConjunctiveQuery;
use crate::pq::PositiveQuery;

/// A (partial) assignment of query variables to values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    map: HashMap<VarId, Value>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a valuation from pairs.
    pub fn from_pairs<I: IntoIterator<Item = (VarId, Value)>>(pairs: I) -> Self {
        Self {
            map: pairs.into_iter().collect(),
        }
    }

    /// Looks a variable up.
    pub fn get(&self, v: VarId) -> Option<&Value> {
        self.map.get(&v)
    }

    /// Binds a variable (overwriting any previous binding).
    pub fn bind(&mut self, v: VarId, value: Value) {
        self.map.insert(v, value);
    }

    /// Whether the variable is bound.
    pub fn is_bound(&self, v: VarId) -> bool {
        self.map.contains_key(&v)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &Value)> {
        self.map.iter()
    }

    /// Exposes the underlying map (e.g. for [`Atom::substitute`]).
    pub fn as_map(&self) -> &HashMap<VarId, Value> {
        &self.map
    }

    /// Consumes the valuation into its map.
    pub fn into_map(self) -> HashMap<VarId, Value> {
        self.map
    }

    /// The image of a term under the valuation, if determined.
    pub fn apply(&self, term: &Term) -> Option<Value> {
        match term {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => self.map.get(v).cloned(),
        }
    }

    /// The tuple of values assigned to `vars`, if all are bound.
    pub fn project(&self, vars: &[VarId]) -> Option<Tuple> {
        let mut out = Vec::with_capacity(vars.len());
        for v in vars {
            out.push(self.map.get(v)?.clone());
        }
        Some(Tuple::new(out))
    }

    /// Attempts to extend the valuation so that `atom` maps onto `tuple`.
    /// Returns the extended valuation, or `None` on mismatch.
    pub fn unify_atom(&self, atom: &Atom, tuple: &Tuple) -> Option<Valuation> {
        if atom.arity() != tuple.arity() {
            return None;
        }
        let mut next = self.clone();
        for (term, value) in atom.terms().iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Var(v) => match next.map.get(v) {
                    Some(existing) if existing != value => return None,
                    Some(_) => {}
                    None => {
                        next.map.insert(*v, value.clone());
                    }
                },
            }
        }
        Some(next)
    }
}

impl FromIterator<(VarId, Value)> for Valuation {
    fn from_iter<T: IntoIterator<Item = (VarId, Value)>>(iter: T) -> Self {
        Valuation::from_pairs(iter)
    }
}

/// The positions of `atom` whose value is already determined by `current`
/// (constants and bound variables) — the index constraints for the
/// candidate scan.
fn bound_constraints<'a>(atom: &'a Atom, current: &'a Valuation) -> Vec<(usize, &'a Value)> {
    atom.terms()
        .iter()
        .enumerate()
        .filter_map(|(pos, term)| match term {
            Term::Const(c) => Some((pos, c)),
            Term::Var(v) => current.get(*v).map(|val| (pos, val)),
        })
        .collect()
}

/// The candidate tuples for `atom` under `current`: index-backed candidates
/// from `store` plus any `extra` facts of the atom's relation that agree
/// with the determined positions.
fn candidates_with_extra<'a>(
    atom: &'a Atom,
    store: &'a FactStore,
    extra: &'a [(RelationId, Tuple)],
    current: &'a Valuation,
) -> Vec<&'a Tuple> {
    let constraints = bound_constraints(atom, current);
    let mut out = store.candidates(atom.relation(), &constraints);
    for (rel, t) in extra {
        if *rel == atom.relation() && constraints.iter().all(|&(pos, v)| t.get(pos) == Some(v)) {
            out.push(t);
        }
    }
    out
}

/// Index-backed candidate tuples for `atom` under the partial valuation
/// `current`: the atom's determined positions (constants and bound
/// variables) become index constraints, so only binding-compatible tuples
/// are enumerated. Repeated-variable consistency within the atom must still
/// be checked by [`Valuation::unify_atom`].
pub fn atom_candidates<'a>(
    atom: &'a Atom,
    store: &'a FactStore,
    current: &'a Valuation,
) -> Vec<&'a Tuple> {
    candidates_with_extra(atom, store, &[], current)
}

/// Finds one homomorphism extending `partial` that maps every atom of
/// `atoms` into `store`. Returns `None` when no such homomorphism exists.
pub fn find_homomorphism(
    atoms: &[Atom],
    store: &FactStore,
    partial: &Valuation,
) -> Option<Valuation> {
    find_homomorphism_with_extra(atoms, store, &[], partial)
}

/// Like [`find_homomorphism`] but over `store` extended with the `extra`
/// facts (the union is never materialised).
pub fn find_homomorphism_with_extra(
    atoms: &[Atom],
    store: &FactStore,
    extra: &[(RelationId, Tuple)],
    partial: &Valuation,
) -> Option<Valuation> {
    fn go(
        atoms: &[Atom],
        idx: usize,
        store: &FactStore,
        extra: &[(RelationId, Tuple)],
        current: &Valuation,
    ) -> Option<Valuation> {
        let Some(atom) = atoms.get(idx) else {
            return Some(current.clone());
        };
        for tuple in candidates_with_extra(atom, store, extra, current) {
            if let Some(extended) = current.unify_atom(atom, tuple) {
                if let Some(done) = go(atoms, idx + 1, store, extra, &extended) {
                    return Some(done);
                }
            }
        }
        None
    }
    go(atoms, 0, store, extra, partial)
}

/// Enumerates homomorphisms of `atoms` into `store` extending `partial`,
/// stopping after `limit` results (use `usize::MAX` for all).
pub fn all_homomorphisms(
    atoms: &[Atom],
    store: &FactStore,
    partial: &Valuation,
    limit: usize,
) -> Vec<Valuation> {
    let mut out = Vec::new();
    fn go(
        atoms: &[Atom],
        idx: usize,
        store: &FactStore,
        current: &Valuation,
        out: &mut Vec<Valuation>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        let Some(atom) = atoms.get(idx) else {
            out.push(current.clone());
            return;
        };
        for tuple in candidates_with_extra(atom, store, &[], current) {
            if out.len() >= limit {
                return;
            }
            if let Some(extended) = current.unify_atom(atom, tuple) {
                go(atoms, idx + 1, store, &extended, out, limit);
            }
        }
    }
    go(atoms, 0, store, partial, &mut out, limit);
    out
}

/// Evaluates a Boolean conjunctive query over a fact store.
///
/// For non-Boolean queries this still returns "is the existential closure
/// true"; use [`answers_cq`] for output tuples.
pub fn holds_cq(query: &ConjunctiveQuery, store: &FactStore) -> bool {
    find_homomorphism(query.atoms(), store, &Valuation::new()).is_some()
}

/// Evaluates a Boolean conjunctive query over `store` extended with the
/// `extra` facts, without materialising the union.
pub fn holds_cq_with_extra(
    query: &ConjunctiveQuery,
    store: &FactStore,
    extra: &[(RelationId, Tuple)],
) -> bool {
    find_homomorphism_with_extra(query.atoms(), store, extra, &Valuation::new()).is_some()
}

/// Evaluates a Boolean positive query over a fact store (via its cached UCQ
/// form).
pub fn holds_pq(query: &PositiveQuery, store: &FactStore) -> bool {
    query.ucq().iter().any(|cq| holds_cq(cq, store))
}

/// Evaluates a Boolean positive query over `store` plus `extra` facts.
pub fn holds_pq_with_extra(
    query: &PositiveQuery,
    store: &FactStore,
    extra: &[(RelationId, Tuple)],
) -> bool {
    query
        .ucq()
        .iter()
        .any(|cq| holds_cq_with_extra(cq, store, extra))
}

/// Computes the answer tuples of a (possibly non-Boolean) conjunctive query.
pub fn answers_cq(query: &ConjunctiveQuery, store: &FactStore) -> Vec<Tuple> {
    let mut out: Vec<Tuple> =
        all_homomorphisms(query.atoms(), store, &Valuation::new(), usize::MAX)
            .into_iter()
            .filter_map(|h| h.project(query.free_vars()))
            .collect();
    out.sort();
    out.dedup();
    out
}

/// Computes the answer tuples of a positive query (union of its disjuncts'
/// answers).
pub fn answers_pq(query: &PositiveQuery, store: &FactStore) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = query
        .ucq()
        .iter()
        .flat_map(|cq| answers_cq(cq, store))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use accrel_schema::{tuple, Schema};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, FactStore) {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d), ("b", d)]).unwrap();
        b.relation("S", &[("a", d)]).unwrap();
        let schema = b.build();
        let mut store = FactStore::new(schema.clone());
        store.insert_named("R", ["1", "2"]).unwrap();
        store.insert_named("R", ["2", "3"]).unwrap();
        store.insert_named("R", ["3", "3"]).unwrap();
        store.insert_named("S", ["2"]).unwrap();
        (schema, store)
    }

    #[test]
    fn valuation_basics() {
        let mut v = Valuation::new();
        assert!(v.is_empty());
        v.bind(VarId(0), Value::sym("a"));
        assert!(v.is_bound(VarId(0)));
        assert_eq!(v.get(VarId(0)), Some(&Value::sym("a")));
        assert_eq!(v.len(), 1);
        assert_eq!(v.apply(&Term::Var(VarId(0))), Some(Value::sym("a")));
        assert_eq!(v.apply(&Term::Var(VarId(1))), None);
        assert_eq!(v.apply(&Term::constant("k")), Some(Value::sym("k")));
        assert_eq!(v.project(&[VarId(0)]), Some(tuple(["a"])));
        assert_eq!(v.project(&[VarId(0), VarId(1)]), None);
        assert_eq!(v.iter().count(), 1);
        let v2: Valuation = vec![(VarId(3), Value::int(1))].into_iter().collect();
        assert_eq!(v2.as_map().len(), 1);
        assert_eq!(v2.into_map().len(), 1);
    }

    #[test]
    fn unify_atom_respects_constants_and_repeats() {
        let (schema, _) = setup();
        let r = schema.relation_by_name("R").unwrap();
        let atom = Atom::new(r, vec![Term::Var(VarId(0)), Term::Var(VarId(0))]);
        let v = Valuation::new();
        assert!(v.unify_atom(&atom, &tuple(["3", "3"])).is_some());
        assert!(v.unify_atom(&atom, &tuple(["1", "2"])).is_none());
        let atom_c = Atom::new(r, vec![Term::constant("1"), Term::Var(VarId(1))]);
        assert!(v.unify_atom(&atom_c, &tuple(["1", "2"])).is_some());
        assert!(v.unify_atom(&atom_c, &tuple(["2", "3"])).is_none());
        // arity mismatch
        assert!(v.unify_atom(&atom_c, &tuple(["1"])).is_none());
        // conflicting prior binding
        let bound = Valuation::from_pairs([(VarId(1), Value::sym("9"))]);
        assert!(bound.unify_atom(&atom_c, &tuple(["1", "2"])).is_none());
    }

    #[test]
    fn path_query_evaluation() {
        let (schema, store) = setup();
        let mut qb = ConjunctiveQuery::builder(schema);
        let x = qb.var("x");
        let y = qb.var("y");
        let z = qb.var("z");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        qb.atom("R", vec![Term::Var(y), Term::Var(z)]).unwrap();
        qb.atom("S", vec![Term::Var(y)]).unwrap();
        let q = qb.build();
        // R(1,2), R(2,3), S(2): the path through y=2 works.
        assert!(holds_cq(&q, &store));
    }

    #[test]
    fn unsatisfied_query() {
        let (schema, store) = setup();
        let mut qb = ConjunctiveQuery::builder(schema);
        let x = qb.var("x");
        qb.atom("S", vec![Term::Var(x)]).unwrap();
        qb.atom("R", vec![Term::constant("9"), Term::Var(x)])
            .unwrap();
        let q = qb.build();
        assert!(!holds_cq(&q, &store));
    }

    #[test]
    fn answers_with_free_variables() {
        let (schema, store) = setup();
        let mut qb = ConjunctiveQuery::builder(schema);
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        qb.free(&[x]);
        let q = qb.build();
        let answers = answers_cq(&q, &store);
        assert_eq!(answers, vec![tuple(["1"]), tuple(["2"]), tuple(["3"])]);
    }

    #[test]
    fn all_homomorphisms_respects_limit() {
        let (schema, store) = setup();
        let r = schema.relation_by_name("R").unwrap();
        let atom = Atom::new(r, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]);
        let all = all_homomorphisms(
            std::slice::from_ref(&atom),
            &store,
            &Valuation::new(),
            usize::MAX,
        );
        assert_eq!(all.len(), 3);
        let limited = all_homomorphisms(&[atom], &store, &Valuation::new(), 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn empty_query_is_always_true() {
        let (schema, store) = setup();
        let q = ConjunctiveQuery::new(schema, vec![], vec![], vec![]);
        assert!(holds_cq(&q, &store));
        assert_eq!(answers_cq(&q, &store), vec![Tuple::empty()]);
    }

    #[test]
    fn positive_query_evaluation() {
        let (schema, store) = setup();
        let mut b = PositiveQuery::builder(schema);
        let x = b.var("x");
        // S(x) ∧ (R(x, 9) ∨ R(9, x)) — false; S(x) ∨ R(9, x) — true.
        let sx = b.atom("S", vec![Term::Var(x)]).unwrap();
        let r1 = b
            .atom("R", vec![Term::Var(x), Term::constant("9")])
            .unwrap();
        let r2 = b
            .atom("R", vec![Term::constant("9"), Term::Var(x)])
            .unwrap();
        let q_false = b.clone().build(sx.clone().and(r1.clone().or(r2.clone())));
        assert!(!holds_pq(&q_false, &store));
        let q_true = b.build(sx.or(r2));
        assert!(holds_pq(&q_true, &store));
    }

    #[test]
    fn positive_query_answers() {
        let (schema, store) = setup();
        let mut b = PositiveQuery::builder(schema);
        let x = b.var("x");
        let sx = b.atom("S", vec![Term::Var(x)]).unwrap();
        let rx = b
            .atom("R", vec![Term::Var(x), Term::constant("3")])
            .unwrap();
        b.free(&[x]);
        let q = b.build(sx.or(rx));
        let ans = answers_pq(&q, &store);
        assert_eq!(ans, vec![tuple(["2"]), tuple(["3"])]);
    }

    #[test]
    fn overlay_evaluation_matches_materialised_union() {
        let (schema, store) = setup();
        let r = schema.relation_by_name("R").unwrap();
        let s = schema.relation_by_name("S").unwrap();
        let mut qb = ConjunctiveQuery::builder(schema.clone());
        let x = qb.var("x");
        let y = qb.var("y");
        qb.atom("R", vec![Term::Var(x), Term::Var(y)]).unwrap();
        qb.atom("S", vec![Term::Var(y)]).unwrap();
        qb.atom("S", vec![Term::Var(x)]).unwrap();
        let q = qb.build();
        // Not satisfiable in the base store (S = {2} only).
        assert!(!holds_cq(&q, &store));
        // Overlay S(1): R(1,2), S(2), S(1) closes the cycle.
        let extra = vec![(s, tuple(["1"]))];
        assert!(holds_cq_with_extra(&q, &store, &extra));
        // The overlay also offers new join tuples for R.
        let extra_r = vec![(r, tuple(["2", "2"]))];
        assert!(holds_cq_with_extra(&q, &store, &extra_r));
        // Against the materialised union the verdicts agree.
        let mut merged = store.clone();
        merged.insert(s, tuple(["1"])).unwrap();
        assert!(holds_cq(&q, &merged));
        assert!(!holds_cq_with_extra(&q, &store, &[]));
    }

    #[test]
    fn partial_valuation_seeds_search() {
        let (schema, store) = setup();
        let r = schema.relation_by_name("R").unwrap();
        let atom = Atom::new(r, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]);
        let seed = Valuation::from_pairs([(VarId(0), Value::sym("2"))]);
        let hom = find_homomorphism(&[atom], &store, &seed).unwrap();
        assert_eq!(hom.get(VarId(1)), Some(&Value::sym("3")));
        let bad_seed = Valuation::from_pairs([(VarId(0), Value::sym("99"))]);
        let r_atom = Atom::new(r, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]);
        assert!(find_homomorphism(&[r_atom], &store, &bad_seed).is_none());
    }
}
