//! A unified wrapper over conjunctive and positive queries.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use accrel_schema::{RelationId, Schema, SchemaError, Value};

use crate::cq::ConjunctiveQuery;
use crate::pq::PositiveQuery;

/// Either a conjunctive query or a positive query.
///
/// The decision procedures of `accrel-core` are parameterised by this type:
/// the complexity of relevance and containment differs between the two query
/// languages (Table 1 of the paper), but the algorithms share their overall
/// structure after normalisation to a union of conjunctive queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// A conjunctive query.
    Cq(ConjunctiveQuery),
    /// A positive (existential) query.
    Pq(PositiveQuery),
}

impl Query {
    /// The schema the query ranges over.
    pub fn schema(&self) -> &Arc<Schema> {
        match self {
            Query::Cq(q) => q.schema(),
            Query::Pq(q) => q.schema(),
        }
    }

    /// `true` when the query has no free variables.
    pub fn is_boolean(&self) -> bool {
        match self {
            Query::Cq(q) => q.is_boolean(),
            Query::Pq(q) => q.is_boolean(),
        }
    }

    /// `true` when the query is conjunctive.
    pub fn is_conjunctive(&self) -> bool {
        matches!(self, Query::Cq(_))
    }

    /// Normalises the query to an owned union of conjunctive queries.
    /// Prefer [`Query::ucq`] on hot paths: it borrows the cached expansion
    /// instead of cloning it.
    pub fn to_ucq(&self) -> Vec<ConjunctiveQuery> {
        match self {
            Query::Cq(q) => vec![q.clone()],
            Query::Pq(q) => q.to_ucq(),
        }
    }

    /// The query as a borrowed union of conjunctive queries: a CQ is viewed
    /// as a one-element slice, a PQ borrows its cached DNF expansion (see
    /// [`PositiveQuery::ucq`]).
    pub fn ucq(&self) -> &[ConjunctiveQuery] {
        match self {
            Query::Cq(q) => std::slice::from_ref(q),
            Query::Pq(q) => q.ucq(),
        }
    }

    /// The relations mentioned by the query.
    pub fn relations(&self) -> HashSet<RelationId> {
        match self {
            Query::Cq(q) => q.relations(),
            Query::Pq(q) => q.relations(),
        }
    }

    /// The constants mentioned by the query.
    pub fn constants(&self) -> HashSet<Value> {
        match self {
            Query::Cq(q) => q.constants(),
            Query::Pq(q) => q.constants(),
        }
    }

    /// Total number of atom occurrences.
    pub fn size(&self) -> usize {
        match self {
            Query::Cq(q) => q.atoms().len(),
            Query::Pq(q) => q.size(),
        }
    }

    /// Validates the query against its schema.
    pub fn validate(&self) -> Result<(), SchemaError> {
        match self {
            Query::Cq(q) => q.validate(),
            Query::Pq(q) => q.validate(),
        }
    }

    /// Views the query as a positive query (CQs are wrapped).
    pub fn as_positive(&self) -> PositiveQuery {
        match self {
            Query::Cq(q) => PositiveQuery::from_cq(q),
            Query::Pq(q) => q.clone(),
        }
    }
}

impl From<ConjunctiveQuery> for Query {
    fn from(q: ConjunctiveQuery) -> Self {
        Query::Cq(q)
    }
}

impl From<PositiveQuery> for Query {
    fn from(q: PositiveQuery) -> Self {
        Query::Pq(q)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Cq(q) => write!(f, "{q}"),
            Query::Pq(q) => write!(f, "{q}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Term;

    fn schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d)]).unwrap();
        b.relation("S", &[("a", d)]).unwrap();
        b.build()
    }

    #[test]
    fn wraps_cq() {
        let s = schema();
        let mut qb = ConjunctiveQuery::builder(s);
        let x = qb.var("x");
        qb.atom("R", vec![Term::Var(x)]).unwrap();
        let q: Query = qb.build().into();
        assert!(q.is_boolean());
        assert!(q.is_conjunctive());
        assert_eq!(q.to_ucq().len(), 1);
        assert_eq!(q.size(), 1);
        assert_eq!(q.relations().len(), 1);
        assert!(q.validate().is_ok());
        assert!(q.to_string().contains("R(x)"));
        assert_eq!(q.as_positive().size(), 1);
        assert!(q.constants().is_empty());
    }

    #[test]
    fn wraps_pq() {
        let s = schema();
        let mut b = PositiveQuery::builder(s);
        let x = b.var("x");
        let rx = b.atom("R", vec![Term::Var(x)]).unwrap();
        let sx = b.atom("S", vec![Term::constant("c")]).unwrap();
        let q: Query = b.build(rx.or(sx)).into();
        assert!(!q.is_conjunctive());
        assert_eq!(q.to_ucq().len(), 2);
        assert_eq!(q.size(), 2);
        assert!(q.constants().contains(&Value::sym("c")));
        assert_eq!(q.schema().relation_count(), 2);
        assert_eq!(q.as_positive().to_ucq().len(), 2);
    }
}
