//! Variables, terms and relational atoms.

use std::collections::{HashMap, HashSet};
use std::fmt;

use accrel_schema::{RelationId, Schema, Tuple, Value};

/// A query variable, identified by an index local to the query it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Returns the raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term occurring in an atom: either a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Creates a variable term.
    pub fn var(v: VarId) -> Self {
        Term::Var(v)
    }

    /// Creates a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// Returns the variable if the term is one.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if the term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// `true` when the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A relational atom `R(t1, ..., tk)`: a relation applied to a list of terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    relation: RelationId,
    terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom over `relation` with the given terms.
    pub fn new(relation: RelationId, terms: Vec<Term>) -> Self {
        Self { relation, terms }
    }

    /// The relation of the atom.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The terms of the atom, in positional order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The arity of the atom (number of terms).
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The term at a given position, if in range.
    pub fn term_at(&self, position: usize) -> Option<&Term> {
        self.terms.get(position)
    }

    /// The set of variables occurring in the atom.
    pub fn variables(&self) -> HashSet<VarId> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }

    /// The variables in positional order (with repetitions).
    pub fn variable_occurrences(&self) -> Vec<(usize, VarId)> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_var().map(|v| (i, v)))
            .collect()
    }

    /// The constants occurring in the atom.
    pub fn constants(&self) -> HashSet<Value> {
        self.terms
            .iter()
            .filter_map(|t| t.as_const().cloned())
            .collect()
    }

    /// `true` if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// Converts a fully ground atom into a fact tuple; `None` if any term is
    /// still a variable.
    pub fn to_tuple(&self) -> Option<Tuple> {
        let mut values = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            values.push(t.as_const()?.clone());
        }
        Some(Tuple::new(values))
    }

    /// Applies a partial substitution of variables by values, leaving
    /// unmapped variables in place.
    pub fn substitute(&self, mapping: &HashMap<VarId, Value>) -> Atom {
        Atom::new(
            self.relation,
            self.terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match mapping.get(v) {
                        Some(val) => Term::Const(val.clone()),
                        None => t.clone(),
                    },
                    Term::Const(_) => t.clone(),
                })
                .collect(),
        )
    }

    /// Renames variables through `mapping`, leaving unmapped variables alone.
    pub fn rename_vars(&self, mapping: &HashMap<VarId, VarId>) -> Atom {
        Atom::new(
            self.relation,
            self.terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(*mapping.get(v).unwrap_or(v)),
                    Term::Const(_) => t.clone(),
                })
                .collect(),
        )
    }

    /// `true` if this atom shares at least one variable with `other`.
    pub fn shares_variable_with(&self, other: &Atom) -> bool {
        let mine = self.variables();
        other.variables().iter().any(|v| mine.contains(v))
    }

    /// Pretty-prints the atom using relation and variable names drawn from
    /// the schema and the supplied variable-name table.
    pub fn display_with(&self, schema: &Schema, var_names: &[String]) -> String {
        let rel_name = schema
            .relation(self.relation)
            .map(|r| r.name().to_string())
            .unwrap_or_else(|_| self.relation.to_string());
        let terms: Vec<String> = self
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => var_names
                    .get(v.index())
                    .cloned()
                    .unwrap_or_else(|| v.to_string()),
                Term::Const(c) => c.to_string(),
            })
            .collect();
        format!("{rel_name}({})", terms.join(", "))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accrel_schema::Schema;

    fn atom() -> Atom {
        Atom::new(
            RelationId(0),
            vec![
                Term::Var(VarId(0)),
                Term::Const(Value::sym("c")),
                Term::Var(VarId(1)),
                Term::Var(VarId(0)),
            ],
        )
    }

    #[test]
    fn variables_and_constants() {
        let a = atom();
        assert_eq!(a.arity(), 4);
        assert_eq!(a.variables(), [VarId(0), VarId(1)].into_iter().collect());
        assert_eq!(a.constants(), [Value::sym("c")].into_iter().collect());
        assert!(!a.is_ground());
        assert_eq!(a.to_tuple(), None);
        assert_eq!(
            a.variable_occurrences(),
            vec![(0, VarId(0)), (2, VarId(1)), (3, VarId(0))]
        );
        assert_eq!(a.term_at(1), Some(&Term::Const(Value::sym("c"))));
        assert_eq!(a.term_at(9), None);
    }

    #[test]
    fn substitution_grounds_atoms() {
        let a = atom();
        let mut m = HashMap::new();
        m.insert(VarId(0), Value::sym("x"));
        let partially = a.substitute(&m);
        assert!(!partially.is_ground());
        m.insert(VarId(1), Value::int(7));
        let ground = a.substitute(&m);
        assert!(ground.is_ground());
        assert_eq!(
            ground.to_tuple().unwrap().values(),
            &[
                Value::sym("x"),
                Value::sym("c"),
                Value::int(7),
                Value::sym("x")
            ]
        );
    }

    #[test]
    fn renaming_variables() {
        let a = atom();
        let mut m = HashMap::new();
        m.insert(VarId(0), VarId(10));
        let renamed = a.rename_vars(&m);
        assert_eq!(
            renamed.variables(),
            [VarId(10), VarId(1)].into_iter().collect()
        );
    }

    #[test]
    fn variable_sharing() {
        let a = Atom::new(RelationId(0), vec![Term::Var(VarId(0))]);
        let b = Atom::new(
            RelationId(1),
            vec![Term::Var(VarId(0)), Term::Var(VarId(2))],
        );
        let c = Atom::new(RelationId(1), vec![Term::Var(VarId(3))]);
        assert!(a.shares_variable_with(&b));
        assert!(!a.shares_variable_with(&c));
        assert!(b.shares_variable_with(&b));
    }

    #[test]
    fn display_forms() {
        let a = atom();
        assert_eq!(a.to_string(), "rel#0(?0, c, ?1, ?0)");
        assert_eq!(Term::Var(VarId(3)).to_string(), "?3");
        assert_eq!(Term::Const(Value::int(2)).to_string(), "2");
        let mut b = Schema::builder();
        let d = b.domain("D").unwrap();
        b.relation("R", &[("a", d), ("b", d), ("c", d), ("d", d)])
            .unwrap();
        let schema = b.build();
        let names = vec!["x".to_string(), "y".to_string()];
        assert_eq!(a.display_with(&schema, &names), "R(x, c, y, x)");
    }

    #[test]
    fn term_constructors_and_accessors() {
        let t = Term::var(VarId(1));
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(VarId(1)));
        assert_eq!(t.as_const(), None);
        let c = Term::constant("v");
        assert!(!c.is_var());
        assert_eq!(c.as_const(), Some(&Value::sym("v")));
        let from_var: Term = VarId(2).into();
        assert_eq!(from_var, Term::Var(VarId(2)));
        let from_val: Term = Value::int(1).into();
        assert_eq!(from_val, Term::Const(Value::int(1)));
        assert_eq!(VarId(5).index(), 5);
    }

    #[test]
    fn ground_atom_to_tuple() {
        let a = Atom::new(
            RelationId(2),
            vec![Term::Const(Value::int(1)), Term::Const(Value::int(2))],
        );
        assert!(a.is_ground());
        assert_eq!(a.to_tuple().unwrap().arity(), 2);
        assert_eq!(a.relation(), RelationId(2));
        assert!(a.variables().is_empty());
    }
}
