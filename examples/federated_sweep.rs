//! The bank scenario of Section 1, run against a *federation*: the four Web
//! forms split across two simulated providers with different latency,
//! failure and paging behaviour, executed by the batch scheduler.
//!
//! ```text
//! cargo run --example federated_sweep
//! ```

use accrel::engine::scenarios::bank_scenario;
use accrel::prelude::*;

fn main() {
    let scenario = bank_scenario();

    // Provider A hosts the employee/office forms: quick but paged.
    let provider_a = SimulatedSource::exact(
        "hr-portal",
        scenario.instance.clone(),
        scenario.methods.clone(),
    )
    .with_latency(LatencyModel {
        base_micros: 120,
        jitter_micros: 40,
        seed: 1,
        sleep: true,
    })
    .with_paging(2);

    // Provider B hosts the approval/manager forms: slower and flaky, with
    // transparent retries.
    let provider_b = SimulatedSource::exact(
        "compliance-portal",
        scenario.instance.clone(),
        scenario.methods.clone(),
    )
    .with_latency(LatencyModel {
        base_micros: 400,
        jitter_micros: 100,
        seed: 2,
        sleep: true,
    })
    .with_flaky(FlakyModel {
        period: 2,
        fail_attempts: 1,
        retries: 3,
    });

    let federation = Federation::builder(scenario.methods.clone())
        .source(provider_a, &["EmpOffAcc", "OfficeInfoAcc"])
        .expect("hr methods exist")
        .source(provider_b, &["StateApprAcc", "EmpManAcc"])
        .expect("compliance methods exist")
        .build()
        .expect("every Web form routed");

    println!("query: {}", scenario.query);
    println!("federation: {} sources\n", federation.source_count());

    let executor = Threaded::new(&federation);
    for (batch_size, workers) in [(1, 1), (8, 4)] {
        executor.reset_stats();
        let request = RunRequest::new(scenario.query.clone())
            .with_strategy(Strategy::Exhaustive)
            .with_options(RunOptions {
                batch_size,
                workers,
                speculation: SpeculationMode::CachedOnly,
                ..RunOptions::default()
            });
        let start = std::time::Instant::now();
        let report = executor.execute(&request, &scenario.initial_configuration);
        let wall = start.elapsed();
        assert!(report.certain, "the bank query is answerable");
        println!(
            "batch={batch_size} workers={workers}: certain={} accesses={} batches={} \
             mean-batch={:.2} wasted={} wall={wall:.2?}",
            report.certain,
            report.accesses_made,
            report.batch_stats.batches,
            report.batch_stats.mean_batch(),
            report.batch_stats.speculative_wasted,
        );
        for (name, stats) in federation.per_source_stats() {
            println!(
                "  {name}: calls={} retries={} failures={} tuples={} pages={} sim-latency={}µs",
                stats.source.calls,
                stats.source.retries,
                stats.source.failures,
                stats.source.tuples_returned,
                stats.pages_fetched,
                stats.simulated_latency_micros
            );
        }
    }

    // The parallel relevance sweep: the same verdicts at any worker count.
    let candidates = accrel::access::enumerate::well_formed_accesses(
        &scenario.initial_configuration,
        &scenario.methods,
        &accrel::access::enumerate::EnumerationOptions::default(),
    );
    let verdicts = accrel::prelude::internals::parallel_relevance_sweep(
        &scenario.query,
        &scenario.initial_configuration,
        &candidates,
        &scenario.methods,
        accrel::engine::RelevanceKind::LongTerm,
        &SearchBudget::default(),
        4,
    );
    let relevant = verdicts.iter().filter(|&&v| v).count();
    println!(
        "\nLTR sweep over {} candidates: {relevant} relevant",
        candidates.len()
    );
    assert!(relevant > 0);
}
