//! Quickstart: model a schema with limited access patterns, ask whether an
//! access is relevant, and check containment under access limitations.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use accrel::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A schema with two sources over shared abstract domains.
    //    S is freely accessible; T requires a key produced by S
    //    (Example 2.1 of the paper).
    // ------------------------------------------------------------------
    let mut b = Schema::builder();
    let d = b.domain("D").unwrap();
    let e = b.domain("E").unwrap();
    b.relation("S", &[("a", d), ("b", e)]).unwrap();
    b.relation("T", &[("b", e), ("c", d)]).unwrap();
    let schema = b.build();

    let mut mb = AccessMethods::builder(schema.clone());
    let s_acc = mb.add_free("SAcc", "S", AccessMode::Dependent).unwrap();
    let t_acc = mb.add("TAcc", "T", &["b"], AccessMode::Dependent).unwrap();
    let methods = mb.build();

    // ------------------------------------------------------------------
    // 2. The Boolean query Q = ∃x,y,z S(x,y) ∧ T(y,z).
    // ------------------------------------------------------------------
    let mut qb = ConjunctiveQuery::builder(schema.clone());
    let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
    qb.atom("S", vec![Term::Var(x), Term::Var(y)]).unwrap();
    qb.atom("T", vec![Term::Var(y), Term::Var(z)]).unwrap();
    let query: Query = qb.build().into();
    println!("query: {query}");

    // ------------------------------------------------------------------
    // 3. Relevance of accesses at the empty configuration.
    // ------------------------------------------------------------------
    let conf = Configuration::empty(schema.clone());
    let budget = SearchBudget::default();
    let s_access = Access::new(s_acc, binding(Vec::<&str>::new()));

    println!(
        "S access immediately relevant? {}",
        is_immediately_relevant(&query, &conf, &s_access, &methods)
    );
    println!(
        "S access long-term relevant?   {}",
        is_long_term_relevant(&query, &conf, &s_access, &methods, &budget)
    );

    // Once the query is certain nothing is relevant any more.
    let mut done = conf.clone();
    done.insert_named("S", ["a1", "b1"]).unwrap();
    done.insert_named("T", ["b1", "c1"]).unwrap();
    println!(
        "S access still relevant once the query is certain? {}",
        is_long_term_relevant(&query, &done, &s_access, &methods, &budget)
    );
    let _ = t_acc;

    // ------------------------------------------------------------------
    // 4. Containment under access limitations (Example 3.2 flavour):
    //    "∃ a T-fact" is contained in "∃ an S-fact" because the only way to
    //    reach T is through values produced by S.
    // ------------------------------------------------------------------
    let mut q1b = ConjunctiveQuery::builder(schema.clone());
    let (a, c) = (q1b.var("a"), q1b.var("c"));
    q1b.atom("T", vec![Term::Var(a), Term::Var(c)]).unwrap();
    let q_t: Query = q1b.build().into();
    let mut q2b = ConjunctiveQuery::builder(schema);
    let (u, v) = (q2b.var("u"), q2b.var("v"));
    q2b.atom("S", vec![Term::Var(u), Term::Var(v)]).unwrap();
    let q_s: Query = q2b.build().into();

    let forwards = is_contained(&q_t, &q_s, &conf, &methods, &budget);
    let backwards = is_contained(&q_s, &q_t, &conf, &methods, &budget);
    println!(
        "T-query ⊑ S-query under access limitations? {}",
        forwards.contained
    );
    println!(
        "S-query ⊑ T-query under access limitations? {}",
        backwards.contained
    );
    if let Some(witness) = backwards.witness {
        println!(
            "  non-containment witness path ({} accesses): {}",
            witness.path.len(),
            witness.path.display_with(&methods)
        );
    }
}
