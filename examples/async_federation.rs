//! The bank scenario of Section 1 on the **async** federation runtime: the
//! four Web forms split across two simulated providers whose latency,
//! failure and paging models elapse on a deterministic virtual clock — no
//! real sleeps, no worker threads — executed by the `Async` executor
//! answering one `RunRequest` at several in-flight (`workers`) limits.
//!
//! ```text
//! cargo run --example async_federation
//! ```

use accrel::engine::scenarios::bank_scenario;
use accrel::prelude::*;

fn main() {
    let scenario = bank_scenario();

    let build_federation = || {
        // Provider A hosts the employee/office forms: quick but paged.
        let provider_a = SimulatedSource::exact(
            "hr-portal",
            scenario.instance.clone(),
            scenario.methods.clone(),
        )
        .with_latency(LatencyModel {
            base_micros: 120,
            jitter_micros: 40,
            seed: 1,
            sleep: false, // ignored by the async runtime — time is virtual
        })
        .with_paging(2);

        // Provider B hosts the approval/manager forms: slower and flaky,
        // with transparent retries.
        let provider_b = SimulatedSource::exact(
            "compliance-portal",
            scenario.instance.clone(),
            scenario.methods.clone(),
        )
        .with_latency(LatencyModel {
            base_micros: 400,
            jitter_micros: 100,
            seed: 2,
            sleep: false,
        })
        .with_flaky(FlakyModel {
            period: 2,
            fail_attempts: 1,
            retries: 3,
        });

        AsyncFederation::builder(scenario.methods.clone())
            .simulated(provider_a, &["EmpOffAcc", "OfficeInfoAcc"])
            .expect("hr methods exist")
            .simulated(provider_b, &["StateApprAcc", "EmpManAcc"])
            .expect("compliance methods exist")
            .build()
            .expect("every Web form routed")
    };

    println!("query: {}", scenario.query);

    let mut makespans = Vec::new();
    for in_flight in [1usize, 4, 8] {
        // A fresh federation per limit so each virtual clock starts at zero.
        let federation = build_federation();
        let request = RunRequest::new(scenario.query.clone())
            .with_strategy(Strategy::Exhaustive)
            .with_options(RunOptions {
                batch_size: 8,
                workers: in_flight,
                speculation: SpeculationMode::CachedOnly,
                ..RunOptions::default()
            });
        let start = std::time::Instant::now();
        let report = Async::new(&federation).execute(&request, &scenario.initial_configuration);
        let wall = start.elapsed();
        let virtual_micros = federation.clock().now_micros();
        assert!(report.certain, "the bank query is answerable");
        println!(
            "in-flight={in_flight}: certain={} accesses={} batches={} mean-batch={:.2} \
             virtual={virtual_micros}µs wall={wall:.2?}",
            report.certain,
            report.accesses_made,
            report.batch_stats.batches,
            report.batch_stats.mean_batch(),
        );
        for (name, stats) in federation.per_source_stats() {
            println!(
                "  {name}: calls={} retries={} failures={} tuples={} pages={} sim-latency={}µs",
                stats.source.calls,
                stats.source.retries,
                stats.source.failures,
                stats.source.tuples_returned,
                stats.pages_fetched,
                stats.simulated_latency_micros
            );
        }
        makespans.push(virtual_micros);
    }
    // Overlapping in-flight round trips compresses simulated time: that is
    // the async runtime's whole point in the paper's high-latency setting.
    assert!(
        makespans.windows(2).all(|w| w[1] <= w[0]),
        "virtual makespan must not grow with the in-flight limit: {makespans:?}"
    );
    assert!(
        makespans.last().unwrap() < makespans.first().unwrap(),
        "overlap must pay off: {makespans:?}"
    );
    println!(
        "\nvirtual makespans at in-flight 1/4/8: {makespans:?} \
         (same answers, same accesses — only waiting overlaps)"
    );

    // The executor is reusable directly for ad-hoc concurrent calls.
    let federation = build_federation();
    let executor = accrel::prelude::internals::Executor::new(federation.clock().clone());
    let candidates = accrel::access::enumerate::well_formed_accesses(
        &scenario.initial_configuration,
        &scenario.methods,
        &accrel::access::enumerate::EnumerationOptions::default(),
    );
    let handles: Vec<_> = candidates
        .iter()
        .map(|access| executor.spawn(federation.call(access.clone())))
        .collect();
    assert_eq!(executor.run(), 0);
    let ok = handles
        .iter()
        .filter(|h| matches!(h.take(), Some(Ok(_))))
        .count();
    println!(
        "ad-hoc fan-out: {ok}/{} seed accesses answered in {}µs of virtual time",
        candidates.len(),
        federation.clock().now_micros()
    );
}
