//! The lower-bound machinery as a workload generator: corridor tiling
//! problems, the Proposition 6.2 encoding into containment under access
//! limitations, and what the decision procedures report on them.
//!
//! ```text
//! cargo run --example tiling_workloads
//! ```

use accrel::prelude::*;
use accrel::workloads::encodings::{encode_prop_6_2, encoding_stats};
use accrel::workloads::tiling::{checkerboard, cycling_rows, frozen_checkerboard};

fn main() {
    println!("| problem              | width | solvable | relations | config facts | q_wrong disjuncts |");
    println!("|----------------------|-------|----------|-----------|--------------|-------------------|");
    for (name, problem) in [
        ("checkerboard", checkerboard(2)),
        ("checkerboard", checkerboard(3)),
        ("frozen checkerboard", frozen_checkerboard(2)),
        ("cycling rows", cycling_rows(2)),
    ] {
        let enc = encode_prop_6_2(&problem);
        let stats = encoding_stats(&problem, &enc);
        println!(
            "| {:<20} | {:<5} | {:<8} | {:<9} | {:<12} | {:<17} |",
            name,
            problem.width,
            problem.solvable(8),
            stats.relations,
            stats.configuration_facts,
            stats.wrong_disjuncts
        );
    }

    // The reduction in action on an unsolvable instance: q_final ⊑ q_wrong
    // must hold (every reachable configuration that spells the final row
    // also exhibits a violation), and the checker agrees.
    let problem = frozen_checkerboard(2);
    let enc = encode_prop_6_2(&problem);
    let outcome = is_contained(
        &enc.q_final,
        &enc.q_wrong,
        &enc.configuration,
        &enc.methods,
        &SearchBudget::shallow(),
    );
    println!(
        "\nfrozen checkerboard (unsolvable): q_final ⊑ q_wrong ? {}  (expected: true)",
        outcome.contained
    );

    // On a solvable instance the ground truth is non-containment; the
    // witness is a full correct tiling, which lies beyond the default
    // search budget of the (budget-complete) checker — this is exactly the
    // exponential behaviour the lower bound builds on, and EXPERIMENTS.md
    // discusses it under experiment E3.
    let problem = checkerboard(2);
    println!(
        "checkerboard 2×corridor is solvable: {} (brute-force solver)",
        problem.solvable(4)
    );
}
