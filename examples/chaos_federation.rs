//! Chaos federation: the bank scenario keeps answering — byte-for-byte like
//! the sequential engine — while a churn script kills the primary source
//! mid-run and a standby replica takes over.
//!
//! ```text
//! cargo run --example chaos_federation --release
//! ```

use accrel::engine::scenarios::bank_scenario;
use accrel::prelude::*;

fn main() {
    let scenario = bank_scenario();
    let methods = scenario.methods.clone();
    let names: Vec<&str> = methods.iter().map(|(_, m)| m.name()).collect();
    println!("scenario : {}", scenario.description);
    println!("query    : {}\n", scenario.query);

    // Two autonomous providers over the same hidden data. Replicas answer
    // under the same response policy, so a failed-over access returns
    // exactly what the primary would have returned.
    let primary =
        SimulatedSource::exact("bank-primary", scenario.instance.clone(), methods.clone());
    let replica =
        SimulatedSource::exact("bank-replica", scenario.instance.clone(), methods.clone());

    // The churn script: 40 virtual microseconds in, the primary dies; it
    // never comes back. The sync federation paces its chaos clock 10µs per
    // wire call, so the kill lands mid-run.
    let script = ChurnScript::builder().kill(40, "bank-primary").build();

    let federation = Federation::builder(methods.clone())
        .source(primary, &names)
        .expect("primary registers")
        .replica(replica, &names)
        .expect("replica registers")
        .with_chaos(ChaosOptions::scripted(script, 10))
        .build()
        .expect("federation builds");

    let report = BatchScheduler::new(&federation, scenario.query.clone(), Strategy::Hybrid)
        .run(&scenario.initial_configuration);

    // The sequential oracle never sees any churn at all.
    let oracle_source = DeepWebSource::new(
        scenario.instance.clone(),
        scenario.methods.clone(),
        ResponsePolicy::Exact,
    );
    let oracle = FederatedEngine::new(&oracle_source, scenario.query.clone(), Strategy::Hybrid)
        .run(&scenario.initial_configuration);

    println!("answered              : {}", report.certain);
    println!("accesses made         : {}", report.accesses_made);
    println!("churn events fired    : {}", report.chaos.churn_events);
    println!("dead-source skips     : {}", report.chaos.dead_skips);
    println!("replica failovers     : {}", report.chaos.failovers);
    println!();
    for (name, stats) in federation.per_source_stats() {
        println!(
            "{name:<13}: {} calls, {} failures",
            stats.source.calls + stats.source.failures,
            stats.source.failures
        );
    }

    assert_eq!(report.access_sequence, oracle.access_sequence);
    assert_eq!(report.answers, oracle.answers);
    assert_eq!(report.certain, oracle.certain);
    assert!(report
        .final_configuration
        .same_facts(&oracle.final_configuration));
    assert!(report.chaos.churn_events >= 1, "the kill must have fired");
    println!(
        "\nEvery access the dead primary could no longer serve was re-routed to the \
         replica, and the run's access sequence, answers and final configuration are \
         byte-for-byte the sequential engine's: churn changes *where* responses come \
         from, never *what* they are."
    );
}
