//! The Section 3 connection between long-term relevance and containment
//! under access limitations, on the Example 3.2 world: the same question is
//! answered three ways (directly, via Proposition 3.4, via Proposition 3.5)
//! and the verdicts must agree.
//!
//! ```text
//! cargo run --example relevance_vs_containment
//! ```

use accrel::core::reductions;
use accrel::prelude::*;

fn main() {
    // Example 3.2: unary R and S over one domain; R has a Boolean dependent
    // access, S a free one.
    let mut b = Schema::builder();
    let d = b.domain("D").unwrap();
    b.relation("R", &[("a", d)]).unwrap();
    b.relation("S", &[("a", d)]).unwrap();
    let schema = b.build();
    let mut mb = AccessMethods::builder(schema.clone());
    let r_check = mb
        .add_boolean("RCheck", "R", AccessMode::Dependent)
        .unwrap();
    mb.add_free("SAll", "S", AccessMode::Dependent).unwrap();
    let methods = mb.build();
    let budget = SearchBudget::default();

    // Q1 = ∃x R(x), Q2 = ∃x S(x).
    let mut b1 = PositiveQuery::builder(schema.clone());
    let x = b1.var("x");
    let f1 = b1.atom("R", vec![Term::Var(x)]).unwrap();
    let q1 = b1.build(f1);
    let mut b2 = PositiveQuery::builder(schema.clone());
    let x = b2.var("x");
    let f2 = b2.atom("S", vec![Term::Var(x)]).unwrap();
    let q2 = b2.build(f2);

    let conf = Configuration::empty(schema.clone());
    println!("Q1 = {q1}\nQ2 = {q2}\n");

    // Containment under access limitations (Example 3.2): Q1 ⊑ Q2 holds
    // even though it fails classically, because every R-value must first be
    // produced by the free S access.
    let fwd = is_contained(
        &Query::Pq(q1.clone()),
        &Query::Pq(q2.clone()),
        &conf,
        &methods,
        &budget,
    );
    let bwd = is_contained(
        &Query::Pq(q2.clone()),
        &Query::Pq(q1.clone()),
        &conf,
        &methods,
        &budget,
    );
    println!("Q1 ⊑ Q2 under access limitations: {}", fwd.contained);
    println!("Q2 ⊑ Q1 under access limitations: {}\n", bwd.contained);

    // Long-term relevance of the Boolean access R(v)? in a configuration
    // where v is known through S.
    let mut conf_v = Configuration::empty(schema);
    conf_v.insert_named("S", ["v"]).unwrap();
    let access = Access::new(r_check, binding(["v"]));
    let direct = is_long_term_relevant(&Query::Pq(q1.clone()), &conf_v, &access, &methods, &budget);
    println!("R(v)? long-term relevant for Q1 (direct algorithm): {direct}");

    // The same via Proposition 3.4: LTR ⟺ rewritten query not contained.
    let red = reductions::ltr_to_non_containment(&q1, &conf_v, &access, &methods);
    let contained = is_contained(&red.q1, &red.q2, &red.configuration, &red.methods, &budget);
    println!(
        "R(v)? long-term relevant via Prop. 3.4 reduction:    {}",
        !contained.contained
    );

    // And via Proposition 3.5 (containment oracle over subgoal subsets),
    // stated over the original schema and configuration.
    let mut qb = ConjunctiveQuery::builder(q1.schema().clone());
    let y = qb.var("y");
    qb.atom("R", vec![Term::Var(y)]).unwrap();
    let cq = qb.build();
    let via_oracle =
        reductions::ltr_via_containment_oracle(&cq, &conf_v, &access, &methods, &budget);
    println!("R(v)? long-term relevant via Prop. 3.5 oracle:       {via_oracle}");

    assert_eq!(direct, !contained.contained);
    assert_eq!(direct, via_oracle);
    println!("\nAll three routes agree, as Section 3 of the paper predicts.");
}
