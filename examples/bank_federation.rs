//! The Section 1 motivating scenario end-to-end: a federated engine answers
//! the bank/loan query against four simulated Web forms, comparing the
//! exhaustive baseline with relevance-guided access selection.
//!
//! ```text
//! cargo run --example bank_federation --release
//! ```

use accrel::engine::scenarios::bank_scenario;
use accrel::prelude::*;

fn main() {
    let scenario = bank_scenario();
    println!("scenario : {}", scenario.description);
    println!("query    : {}", scenario.query);
    println!(
        "local knowledge: {} facts, hidden source: {} facts\n",
        scenario.initial_configuration.len(),
        scenario.instance.len()
    );

    let source = DeepWebSource::new(
        scenario.instance.clone(),
        scenario.methods.clone(),
        ResponsePolicy::Exact,
    );
    let request = RunRequest::new(scenario.query.clone());

    println!("| strategy    | answered | accesses | skipped | tuples |");
    println!("|-------------|----------|----------|---------|--------|");
    for report in compare_strategies(
        &Sequential::new(&source),
        &request,
        &scenario.initial_configuration,
    ) {
        println!(
            "| {:<11} | {:<8} | {:<8} | {:<7} | {:<6} |",
            report.strategy.name(),
            report.certain,
            report.accesses_made,
            report.accesses_skipped,
            report.tuples_retrieved
        );
    }

    println!(
        "\nThe exhaustive strategy is the dynamic evaluation of Li [18] that the paper \
         contrasts with: it pulls every form it can fill in. The IR-guided strategy stalls \
         immediately — nothing is *immediately* relevant before the last step of a multi-hop \
         plan, which is exactly why the paper introduces long-term relevance. On this scenario \
         almost every access is long-term relevant (any known employee could turn out to be \
         the Illinois loan officer), so LTR pruning saves little here; the star scenario of \
         `accrel-workloads` (see EXPERIMENTS.md, E7) shows the 5x savings it brings when the \
         source graph has genuinely irrelevant branches."
    );
}
